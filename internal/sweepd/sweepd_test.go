package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tagprefetch/internal/experiment"
	"tagprefetch/internal/sim"
)

// manifestStub returns an exec stub that publishes a real (zero-valued)
// manifest for the job, so sweeps complete through the genuine cache path
// without simulating anything.
func manifestStub(s *Server) func(experiment.Job) error {
	return func(j experiment.Job) error {
		factory := j.Factory.Name
		if j.Baseline {
			factory = sim.NoPrefetch().Name
		}
		s.store.Save(j.Bench, factory, j.Baseline, j.Config, sim.Result{})
		return nil
	}
}

func newTestServer(t *testing.T, cfg Config, exec func(experiment.Job) error) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec != nil {
		s.exec = exec
	} else {
		s.exec = manifestStub(s)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func postSweep(t *testing.T, ts *httptest.Server, req Request) (int, Status, []byte) {
	t.Helper()
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req)
	var st Status
	if code == http.StatusAccepted || code == http.StatusOK {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("POST response did not decode as Status: %v\n%s", err, data)
		}
	}
	return code, st, data
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, data, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET status = %d: %s", code, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("sweep failed: %s", st.Failure)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached state %s", id, want)
	return Status{}
}

// TestSweepLifecycle drives the whole POST → poll → result → re-POST
// contract through the stub exec: completion, lazy rendering, same-tenant
// dedup (200, same id) and cross-tenant cache hits (done at admission,
// zero pending).
func TestSweepLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2}, nil)
	req := Request{Sweep: "nbits", Benches: []string{"swim"}, Tenant: "alice"}

	code, st, _ := postSweep(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	if st.Jobs.Total == 0 || st.Jobs.Pending != st.Jobs.Total {
		t.Fatalf("fresh sweep jobs = %+v, want all pending", st.Jobs)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Jobs.Executed != done.Jobs.Total {
		t.Errorf("done sweep executed %d of %d", done.Jobs.Executed, done.Jobs.Total)
	}
	if done.States == nil || done.States.Done != done.Jobs.Total {
		t.Errorf("rollup = %+v, want %d done", done.States, done.Jobs.Total)
	}

	rcode, rbody, rhdr := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+st.ID+"/result", nil)
	if rcode != http.StatusOK {
		t.Fatalf("GET result = %d: %s", rcode, rbody)
	}
	if ct := rhdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("result content-type = %q", ct)
	}
	if len(rbody) == 0 {
		t.Error("result body empty")
	}

	// Same tenant, identical grid: dedup to the same sweep, no new jobs.
	code2, st2, _ := postSweep(t, ts, req)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Errorf("identical re-POST = %d id %s, want 200 id %s", code2, st2.ID, st.ID)
	}

	// Different tenant, identical grid: a new sweep answered entirely
	// from the cache — done at admission, nothing queued or executed.
	req.Tenant = "bob"
	code3, st3, _ := postSweep(t, ts, req)
	if code3 != http.StatusAccepted {
		t.Fatalf("cross-tenant POST = %d, want 202", code3)
	}
	if st3.ID == st.ID {
		t.Error("cross-tenant sweep shares the tenant-scoped id")
	}
	if st3.State != StateDone || st3.Jobs.CachedAtSubmit != st3.Jobs.Total || st3.Jobs.Executed != 0 {
		t.Errorf("cross-tenant sweep = state %s jobs %+v, want done, all cached", st3.State, st3.Jobs)
	}
	rcode3, rbody3, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+st3.ID+"/result", nil)
	if rcode3 != http.StatusOK || !bytes.Equal(rbody3, rbody) {
		t.Errorf("cross-tenant result differs (code %d, %d vs %d bytes)", rcode3, len(rbody3), len(rbody))
	}
}

// TestTwoTenantFairness is the acceptance criterion at the HTTP layer:
// one serial worker, tenant alice floods first, tenant bob arrives while
// alice's first job is in flight — and from then on every scheduling
// round serves both tenants until one drains.
func TestTwoTenantFairness(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string

	var s *Server
	exec := func(j experiment.Job) error {
		<-gate
		mu.Lock()
		switch j.Bench {
		case "swim":
			order = append(order, "alice")
		case "mcf":
			order = append(order, "bob")
		default:
			order = append(order, "?"+j.Bench)
		}
		mu.Unlock()
		return manifestStub(s)(j)
	}
	var ts *httptest.Server
	s, ts = newTestServer(t, Config{Workers: 1}, nil)
	s.exec = exec // rebind: stub needs the server for manifest writes

	codeA, stA, _ := postSweep(t, ts, Request{Sweep: "nbits", Benches: []string{"swim"}, Tenant: "alice"})
	if codeA != http.StatusAccepted {
		t.Fatalf("alice POST = %d", codeA)
	}
	codeB, stB, _ := postSweep(t, ts, Request{Sweep: "nbits", Benches: []string{"mcf"}, Tenant: "bob"})
	if codeB != http.StatusAccepted {
		t.Fatalf("bob POST = %d", codeB)
	}
	close(gate)
	a := waitState(t, ts, stA.ID, StateDone)
	b := waitState(t, ts, stB.ID, StateDone)

	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	if len(got) != a.Jobs.Total+b.Jobs.Total {
		t.Fatalf("executed %d jobs, want %d", len(got), a.Jobs.Total+b.Jobs.Total)
	}
	// Walk the execution order tracking each tenant's remaining backlog:
	// whenever both tenants still have work, consecutive pops must serve
	// different tenants (weight-1 WRR = strict alternation).
	rem := map[string]int{"alice": a.Jobs.Total, "bob": b.Jobs.Total}
	for i, tn := range got {
		if i > 0 && rem["alice"] > 0 && rem["bob"] > 0 && got[i-1] == tn {
			t.Fatalf("pops %d and %d both served %s while both tenants had work (order %v)",
				i-1, i, tn, got[:i+1])
		}
		rem[tn]--
	}
}

// TestBackpressure: a request whose cache misses overflow the bounded
// queue is refused with 429 and a Retry-After hint, before any job is
// queued or executed.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	blocked := func(experiment.Job) error { <-gate; return nil }
	_, ts := newTestServer(t, Config{Workers: 1, MaxQueuedJobs: 1}, blocked)

	code, _, data := postSweep(t, ts, Request{Sweep: "nbits", Benches: []string{"swim"}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("POST over tiny queue = %d, want 429: %s", code, data)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
		t.Errorf("429 body = %s", data)
	}
	_, _, hdr := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", Request{Sweep: "nbits", Benches: []string{"swim"}})
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

// TestJobBudget: max_jobs below the plan size is a typed 400 naming the
// field.
func TestJobBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, nil)
	code, _, data := postSweep(t, ts, Request{Sweep: "nbits", Benches: []string{"swim"}, MaxJobs: 1})
	if code != http.StatusBadRequest {
		t.Fatalf("over-budget POST = %d, want 400: %s", code, data)
	}
	var eb struct {
		Field string `json:"field"`
	}
	if err := json.Unmarshal(data, &eb); err != nil || eb.Field != "max_jobs" {
		t.Errorf("400 body = %s, want field max_jobs", data)
	}
}

// TestInvalidRequests: every malformed request is a 400 naming the field;
// branchpred is absent from the catalog because its grid points carry live
// predictor state and cannot be content-addressed.
func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, nil)
	cases := []struct {
		name  string
		req   Request
		field string
	}{
		{"unknown sweep", Request{Sweep: "nope"}, "sweep"},
		{"branchpred not servable", Request{Sweep: "branchpred"}, "sweep"},
		{"unknown bench", Request{Sweep: "nbits", Benches: []string{"doom"}}, "benches"},
		{"bad fidelity", Request{Sweep: "nbits", WarmupFidelity: "psychic"}, "warmup_fidelity"},
		{"negative budget", Request{Sweep: "nbits", MaxJobs: -1}, "max_jobs"},
	}
	for _, tc := range cases {
		code, _, data := postSweep(t, ts, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400 (%s)", tc.name, code, data)
			continue
		}
		var eb struct {
			Field string `json:"field"`
		}
		if err := json.Unmarshal(data, &eb); err != nil || eb.Field != tc.field {
			t.Errorf("%s: body = %s, want field %s", tc.name, data, tc.field)
		}
	}
	// Unknown JSON fields are rejected too (typo protection).
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps",
		map[string]any{"sweep": "nbits", "benchs": []string{"swim"}})
	if code != http.StatusBadRequest {
		t.Errorf("unknown field POST = %d, want 400: %s", code, data)
	}
}

// TestCancel: DELETE releases queued jobs (relieving backpressure), the
// sweep reports cancelled, its result conflicts, and a later identical
// POST starts fresh instead of deduping onto the corpse.
func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	var s *Server
	exec := func(j experiment.Job) error {
		<-gate
		return manifestStub(s)(j)
	}
	var ts *httptest.Server
	s, ts = newTestServer(t, Config{Workers: 1}, nil)
	s.exec = exec
	t.Cleanup(func() { close(gate) })

	req := Request{Sweep: "nbits", Benches: []string{"swim"}, Tenant: "alice"}
	code, st, _ := postSweep(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	dcode, ddata, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	if dcode != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", dcode, ddata)
	}
	var dst Status
	if err := json.Unmarshal(ddata, &dst); err != nil || dst.State != StateCancelled {
		t.Fatalf("DELETE body = %s, want cancelled", ddata)
	}
	// Queued refs are gone.
	s.mu.Lock()
	queued := s.sched.queued
	s.mu.Unlock()
	if queued != 0 {
		t.Errorf("scheduler still holds %d refs after cancel", queued)
	}
	// Idempotent DELETE; result conflicts.
	if dcode2, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil); dcode2 != http.StatusOK {
		t.Errorf("second DELETE = %d, want 200", dcode2)
	}
	if rcode, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+st.ID+"/result", nil); rcode != http.StatusConflict {
		t.Errorf("result of cancelled sweep = %d, want 409", rcode)
	}
	// Re-POST after cancel starts a fresh sweep under the same id.
	code2, st2, _ := postSweep(t, ts, req)
	if code2 != http.StatusAccepted || st2.ID != st.ID || st2.State == StateCancelled {
		t.Errorf("re-POST after cancel = %d id %s state %s, want 202 fresh %s", code2, st2.ID, st2.State, st.ID)
	}
}

// TestJobFailureFailsSweep: a job error marks the sweep failed, releases
// its queue and surfaces the failure in status and result.
func TestJobFailureFailsSweep(t *testing.T) {
	exec := func(j experiment.Job) error { return fmt.Errorf("disk on fire") }
	_, ts := newTestServer(t, Config{Workers: 1}, exec)
	code, st, _ := postSweep(t, ts, Request{Sweep: "nbits", Benches: []string{"swim"}})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	failed := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(failed.Failure, "disk on fire") {
		t.Errorf("failure = %q", failed.Failure)
	}
	if rcode, rdata, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+st.ID+"/result", nil); rcode != http.StatusConflict {
		t.Errorf("result of failed sweep = %d: %s", rcode, rdata)
	}
}

// TestUnknownSweepRoutes: status, result and cancel of an unknown id are
// 404s.
func TestUnknownSweepRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, nil)
	for _, r := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sweeps/sw-dead"},
		{http.MethodGet, "/v1/sweeps/sw-dead/result"},
		{http.MethodDelete, "/v1/sweeps/sw-dead"},
	} {
		if code, _, _ := doJSON(t, r.method, ts.URL+r.path, nil); code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", r.method, r.path, code)
		}
	}
}

// TestTenantHeader: the X-Tenant header names the tenant when the body
// does not; the body wins when both are present.
func TestTenantHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, nil)
	body, _ := json.Marshal(Request{Sweep: "nbits", Benches: []string{"swim"}})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "carol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "carol" {
		t.Errorf("tenant = %q, want carol (from X-Tenant)", st.Tenant)
	}
}
