package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) generated directly from
// registry snapshots, so any tcp binary can expose its live metrics on a
// -status-addr listener without taking a client-library dependency.
//
// Metric names follow the registry convention (dot-separated
// lower_snake_case paths, enforced by the tcplint statreg analyzer), which
// maps onto valid Prometheus names by replacing dots with underscores under
// a "tcp_" prefix: "memsys.l1.misses" → "tcp_memsys_l1_misses". Nothing is
// collected, rendered, or allocated until a scrape actually arrives —
// attaching an exposition handler to a registry is free when unscraped.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported metric.
const promPrefix = "tcp_"

// PromLabel is one exposition label ({bench="mcf"}).
type PromLabel struct {
	Name, Value string
}

// PromSet is one labelled snapshot: the metrics of one registry exposed
// under a shared label set. A scrape renders one or more sets (e.g. one per
// benchmark run in tcpsim) merged into per-name families.
type PromSet struct {
	Labels  []PromLabel
	Metrics []MetricValue
}

// PromFromRegistry snapshots a registry into a PromSet. Call per scrape:
// the snapshot is taken when the scrape happens, not when the handler is
// attached.
func PromFromRegistry(r *Registry, labels ...PromLabel) PromSet {
	return PromSet{Labels: labels, Metrics: r.Snapshot()}
}

// WritePrometheus renders the sets in the text exposition format. Samples
// of the same metric name across sets are merged into one family (one
// HELP/TYPE header, one sample line per set); families are emitted in
// sorted name order so the output is deterministic.
func WritePrometheus(w io.Writer, sets ...PromSet) error {
	names := make([]string, 0, 64)
	seen := make(map[string]bool, 64)
	for _, set := range sets {
		for _, mv := range set.Metrics {
			if !seen[mv.Name] {
				seen[mv.Name] = true
				names = append(names, mv.Name)
			}
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if err := writeFamily(bw, name, sets); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeFamily renders one metric family: header from the first set that
// carries the name, then one sample (or histogram sample group) per set.
func writeFamily(bw *bufio.Writer, name string, sets []PromSet) error {
	pname := promName(name)
	headerDone := false
	for _, set := range sets {
		for _, mv := range set.Metrics {
			if mv.Name != name {
				continue
			}
			if !headerDone {
				headerDone = true
				if mv.Desc != "" {
					bw.WriteString("# HELP ")
					bw.WriteString(pname)
					bw.WriteByte(' ')
					bw.WriteString(escapeHelp(mv.Desc))
					bw.WriteByte('\n')
				}
				bw.WriteString("# TYPE ")
				bw.WriteString(pname)
				bw.WriteByte(' ')
				bw.WriteString(promType(mv.Kind))
				bw.WriteByte('\n')
			}
			if err := writeSample(bw, pname, mv, set.Labels); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(bw *bufio.Writer, pname string, mv MetricValue, labels []PromLabel) error {
	switch mv.Kind {
	case "histogram":
		// Registry buckets are non-cumulative with exclusive upper bounds
		// over integer samples; Prometheus wants cumulative counts with
		// inclusive "le" bounds, so bucket "< b" becomes le="b-1".
		var cum uint64
		for _, b := range mv.Buckets {
			cum += b.Count
			le := "+Inf"
			if !b.Open {
				le = strconv.FormatUint(b.UpperBound-1, 10)
			}
			bw.WriteString(pname)
			bw.WriteString("_bucket")
			writeLabels(bw, append(labels, PromLabel{Name: "le", Value: le}))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(pname)
		bw.WriteString("_sum")
		writeLabels(bw, labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(mv.Sum, 10))
		bw.WriteByte('\n')
		bw.WriteString(pname)
		bw.WriteString("_count")
		writeLabels(bw, labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(mv.Count, 10))
		bw.WriteByte('\n')
	case "counter":
		bw.WriteString(pname)
		writeLabels(bw, labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(mv.Count, 10))
		bw.WriteByte('\n')
	default: // gauge and any future kind render their float value
		bw.WriteString(pname)
		writeLabels(bw, labels)
		bw.WriteByte(' ')
		bw.WriteString(formatPromFloat(mv.Value))
		bw.WriteByte('\n')
	}
	return nil
}

func writeLabels(bw *bufio.Writer, labels []PromLabel) {
	if len(labels) == 0 {
		return
	}
	sorted := append([]PromLabel(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	bw.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(promIdent(l.Name))
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// promName maps a registry metric name onto a valid Prometheus name: dots
// become underscores under the tcp_ prefix.
func promName(name string) string { return promPrefix + promIdent(name) }

// promIdent maps an identifier onto the Prometheus name alphabet
// [a-zA-Z0-9_:] with a non-digit first character; anything else becomes an
// underscore (registry names checked by statreg never contain one).
func promIdent(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promType(kind string) string {
	switch kind {
	case "counter", "gauge", "histogram":
		return kind
	}
	return "untyped"
}

func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// PromHandler serves the exposition format over HTTP. collect is invoked
// once per scrape to snapshot whatever registries the binary wants exposed;
// between scrapes the handler holds no state and costs nothing.
func PromHandler(collect func() []PromSet) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, collect()...) //nolint:errcheck // client gone mid-scrape is not actionable
	})
}
