package telemetry

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("run.instructions", "instructions retired").Add(41)
	reg.Gauge("run.ipc", "headline IPC").Set(1.25)
	h := reg.Histogram("memsys.latency", "load-to-use latency", 4, 16)
	h.Observe(2)
	h.Observe(7)
	h.Observe(100)
	return reg
}

// TestWritePrometheus pins the full text rendering: family order, HELP/TYPE
// headers, counter/gauge/histogram sample shapes, label rendering, and the
// exclusive-bound → inclusive-le conversion.
func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, PromFromRegistry(promTestRegistry(), PromLabel{Name: "bench", Value: "mcf"}))
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP tcp_memsys_latency load-to-use latency
# TYPE tcp_memsys_latency histogram
tcp_memsys_latency_bucket{bench="mcf",le="3"} 1
tcp_memsys_latency_bucket{bench="mcf",le="15"} 2
tcp_memsys_latency_bucket{bench="mcf",le="+Inf"} 3
tcp_memsys_latency_sum{bench="mcf"} 109
tcp_memsys_latency_count{bench="mcf"} 3
# HELP tcp_run_instructions instructions retired
# TYPE tcp_run_instructions counter
tcp_run_instructions{bench="mcf"} 41
# HELP tcp_run_ipc headline IPC
# TYPE tcp_run_ipc gauge
tcp_run_ipc{bench="mcf"} 1.25
`
	if got := b.String(); got != want {
		t.Errorf("rendering mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusMergesSets: the same metric name across two labelled
// sets renders one family header and one sample per set.
func TestWritePrometheusMergesSets(t *testing.T) {
	mk := func(v float64) *Registry {
		r := NewRegistry()
		r.Gauge("run.ipc", "headline IPC").Set(v)
		return r
	}
	var b strings.Builder
	err := WritePrometheus(&b,
		PromFromRegistry(mk(1.5), PromLabel{Name: "bench", Value: "swim"}),
		PromFromRegistry(mk(0.75), PromLabel{Name: "bench", Value: "mcf"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if n := strings.Count(got, "# TYPE tcp_run_ipc gauge"); n != 1 {
		t.Errorf("TYPE headers = %d, want 1:\n%s", n, got)
	}
	for _, line := range []string{
		`tcp_run_ipc{bench="swim"} 1.5`,
		`tcp_run_ipc{bench="mcf"} 0.75`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing sample %q in:\n%s", line, got)
		}
	}
}

// TestPromNameValid: every name obeying the registry naming convention
// (the statreg rule: dot-separated lower_snake_case segments) maps onto a
// valid Prometheus metric name, and hostile input degrades safely.
func TestPromNameValid(t *testing.T) {
	promRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, name := range []string{
		"cpu.instructions",
		"memsys.l1.misses",
		"prefetch.stride_predictions",
		"fleet.jobs.done",
		"run.ipc",
		"x",
	} {
		if got := promName(name); !promRE.MatchString(got) {
			t.Errorf("promName(%q) = %q, not a valid Prometheus name", name, got)
		}
	}
	if got := promName("weird name-1"); !promRE.MatchString(got) {
		t.Errorf("promName on hostile input = %q, invalid", got)
	}
	if got := promIdent("9lives"); got != "_lives" {
		t.Errorf("promIdent(9lives) = %q, want leading digit replaced", got)
	}
}

// TestPromHandler: one scrape returns the exposition content type and a
// fresh snapshot of the registry.
func TestPromHandler(t *testing.T) {
	reg := promTestRegistry()
	h := PromHandler(func() []PromSet { return []PromSet{PromFromRegistry(reg)} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "tcp_run_instructions 41\n") {
		t.Errorf("scrape missing counter sample:\n%s", body)
	}
}

// TestPromNoAllocWhenUnscraped: attaching an exposition handler must not
// tax the metric hot paths — updates stay allocation-free, and no snapshot
// is taken until a scrape arrives (same zero-cost-when-off discipline as
// Tracer.Emit).
func TestPromNoAllocWhenUnscraped(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("run.instructions", "instructions retired")
	g := reg.Gauge("run.ipc", "headline IPC")
	scrapes := 0
	_ = PromHandler(func() []PromSet {
		scrapes++
		return []PromSet{PromFromRegistry(reg)}
	})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.0)
	}); n != 0 {
		t.Errorf("metric updates with handler attached allocate %v times per op, want 0", n)
	}
	if scrapes != 0 {
		t.Errorf("collect ran %d times without a scrape, want 0", scrapes)
	}
}

// BenchmarkWritePrometheus tracks the per-scrape rendering cost.
func BenchmarkWritePrometheus(b *testing.B) {
	reg := promTestRegistry()
	labels := []PromLabel{{Name: "bench", Value: "mcf"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := WritePrometheus(&sb, PromFromRegistry(reg, labels...)); err != nil {
			b.Fatal(err)
		}
	}
}
