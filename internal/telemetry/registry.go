// Package telemetry is the simulator's unified observability layer: a
// hierarchical metrics registry every component registers into at
// construction, a cycle-sampled time-series sampler with phase boundaries,
// a structured event tracer with a zero-cost no-op default, and a
// machine-readable run-report exporter. It is the single place the
// experiment harness and the cmd/ binaries read simulator state from —
// the role the central stats framework plays in gem5-class simulators.
//
// Naming convention: metric names are dot-separated component paths,
// lower_snake_case leaves, e.g. "memsys.l1.misses" or
// "prefetch.stride_predictions". Registry.Sub scopes a registry view to a
// path prefix so components name metrics locally.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric is implemented by the metric kinds defined in this package
// (Counter, Gauge, Histogram). The interface is sealed: components create
// metrics with NewCounter/NewGauge/NewHistogram or through a Registry.
type Metric interface {
	// MetricName is the local (unprefixed) metric name.
	MetricName() string
	// MetricDesc is the one-line description.
	MetricDesc() string
	value(fullName string) MetricValue
}

// Counter is a monotonically increasing uint64 metric. All methods are
// safe for concurrent use.
type Counter struct {
	name, desc string
	v          atomic.Uint64
}

// NewCounter creates a standalone counter (attach with Registry.Attach).
func NewCounter(name, desc string) *Counter {
	return &Counter{name: name, desc: desc}
}

// Inc increments the counter by one.
//
//tcp:hotpath — counters tick on per-access and per-cycle paths.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by n.
//
//tcp:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store sets the counter to n (used by components that mirror an internal
// total into the registry, and by Reset).
//
//tcp:hotpath — the core mirrors progress counters at sampler ticks.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// MetricName implements Metric.
func (c *Counter) MetricName() string { return c.name }

// MetricDesc implements Metric.
func (c *Counter) MetricDesc() string { return c.desc }

func (c *Counter) value(full string) MetricValue {
	v := c.v.Load()
	return MetricValue{Name: full, Desc: c.desc, Kind: "counter", Value: float64(v), Count: v}
}

// Gauge is an instantaneous float64 metric. Safe for concurrent use.
type Gauge struct {
	name, desc string
	bits       atomic.Uint64
}

// NewGauge creates a standalone gauge.
func NewGauge(name, desc string) *Gauge {
	return &Gauge{name: name, desc: desc}
}

// Set stores v.
//
//tcp:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// MetricName implements Metric.
func (g *Gauge) MetricName() string { return g.name }

// MetricDesc implements Metric.
func (g *Gauge) MetricDesc() string { return g.desc }

func (g *Gauge) value(full string) MetricValue {
	return MetricValue{Name: full, Desc: g.desc, Kind: "gauge", Value: g.Value()}
}

// Histogram is a fixed-bucket histogram over non-negative integer samples;
// bucket i counts samples < bounds[i], the last bucket is open-ended.
// Safe for concurrent use.
type Histogram struct {
	name, desc string
	bounds     []uint64

	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a standalone histogram with ascending bucket upper
// bounds. Panics if bounds is empty or not strictly ascending.
func NewHistogram(name, desc string, bounds ...uint64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:   name,
		desc:   desc,
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Total returns the number of samples observed.
func (h *Histogram) Total() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of all samples (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
	h.mu.Unlock()
}

// MetricName implements Metric.
func (h *Histogram) MetricName() string { return h.name }

// MetricDesc implements Metric.
func (h *Histogram) MetricDesc() string { return h.desc }

func (h *Histogram) value(full string) MetricValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	mv := MetricValue{Name: full, Desc: h.desc, Kind: "histogram", Count: h.total, Sum: h.sum}
	if h.total > 0 {
		mv.Value = float64(h.sum) / float64(h.total)
	}
	for i, c := range h.counts {
		b := Bucket{Count: c}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.UpperBound = math.MaxUint64
			b.Open = true
		}
		mv.Buckets = append(mv.Buckets, b)
	}
	return mv
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the exclusive upper bound; the last bucket is open.
	UpperBound uint64 `json:"le"`
	Open       bool   `json:"open,omitempty"`
	Count      uint64 `json:"count"`
}

// MetricValue is one metric in a registry snapshot (and in run reports).
type MetricValue struct {
	Name  string `json:"name"`
	Desc  string `json:"desc,omitempty"`
	Kind  string `json:"kind"`
	Value float64 `json:"value"`
	// Count carries the exact integer value for counters and the sample
	// count for histograms.
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// registryData is the shared store behind a Registry and its Sub views.
type registryData struct {
	mu      sync.RWMutex
	metrics map[string]Metric
}

// Registry is a hierarchical metrics registry. A Registry value is a view
// onto a shared store scoped to a path prefix; Sub derives narrower views.
// All methods are safe for concurrent use.
type Registry struct {
	data   *registryData
	prefix string // "" or "path." (trailing dot)
}

// NewRegistry creates an empty registry rooted at the empty prefix.
func NewRegistry() *Registry {
	return &Registry{data: &registryData{metrics: make(map[string]Metric)}}
}

// Sub returns a view of the registry scoped under path (e.g. "memsys.l1").
func (r *Registry) Sub(path string) *Registry {
	if path == "" {
		return r
	}
	return &Registry{data: r.data, prefix: r.prefix + path + "."}
}

// Attach registers existing metrics under this view's prefix. A metric
// re-attached under a name that is already registered replaces the old one
// (components recreated between runs keep the latest instance live).
func (r *Registry) Attach(ms ...Metric) {
	r.data.mu.Lock()
	for _, m := range ms {
		r.data.metrics[r.prefix+m.MetricName()] = m
	}
	r.data.mu.Unlock()
}

// Counter returns the counter registered under name, creating it if absent.
// Panics if name is registered as a different metric kind.
func (r *Registry) Counter(name, desc string) *Counter {
	full := r.prefix + name
	r.data.mu.Lock()
	defer r.data.mu.Unlock()
	if m, ok := r.data.metrics[full]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s registered as %T, not counter", full, m))
		}
		return c
	}
	c := NewCounter(name, desc)
	r.data.metrics[full] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name, desc string) *Gauge {
	full := r.prefix + name
	r.data.mu.Lock()
	defer r.data.mu.Unlock()
	if m, ok := r.data.metrics[full]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s registered as %T, not gauge", full, m))
		}
		return g
	}
	g := NewGauge(name, desc)
	r.data.metrics[full] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if absent.
func (r *Registry) Histogram(name, desc string, bounds ...uint64) *Histogram {
	full := r.prefix + name
	r.data.mu.Lock()
	defer r.data.mu.Unlock()
	if m, ok := r.data.metrics[full]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s registered as %T, not histogram", full, m))
		}
		return h
	}
	h := NewHistogram(name, desc, bounds...)
	r.data.metrics[full] = h
	return h
}

// Lookup returns the metric registered under name within this view.
func (r *Registry) Lookup(name string) (Metric, bool) {
	r.data.mu.RLock()
	defer r.data.mu.RUnlock()
	m, ok := r.data.metrics[r.prefix+name]
	return m, ok
}

// Len returns the number of metrics visible from this view.
func (r *Registry) Len() int { return len(r.Snapshot()) }

// Snapshot returns the current value of every metric under this view's
// prefix, sorted by full name.
func (r *Registry) Snapshot() []MetricValue {
	r.data.mu.RLock()
	names := make([]string, 0, len(r.data.metrics))
	for name := range r.data.metrics {
		if len(name) >= len(r.prefix) && name[:len(r.prefix)] == r.prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]MetricValue, 0, len(names))
	for _, name := range names {
		out = append(out, r.data.metrics[name].value(name))
	}
	r.data.mu.RUnlock()
	return out
}

// Component is implemented by simulator pieces (caches, prefetchers, the
// memory hierarchy) that can register their metrics into a registry view
// and direct discrete events to a tracer. tr may be nil when the caller
// wants metrics only; implementations must keep any stored tracer non-nil
// (use Nop()).
type Component interface {
	AttachTelemetry(reg *Registry, tr *Tracer)
}
