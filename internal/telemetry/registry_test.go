package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memsys.l1.misses", "L1 demand misses")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Create-or-get returns the same instance.
	if r.Counter("memsys.l1.misses", "") != c {
		t.Error("Counter() did not return the registered instance")
	}
	g := r.Gauge("run.ipc", "measured IPC")
	g.Set(1.25)
	if g.Value() != 1.25 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestSubPrefixAndSnapshot(t *testing.T) {
	r := NewRegistry()
	l1 := r.Sub("memsys").Sub("l1")
	l1.Counter("misses", "L1 misses").Add(7)
	r.Counter("cpu.instructions", "retired").Add(100)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	// Sorted by full name.
	if snap[0].Name != "cpu.instructions" || snap[1].Name != "memsys.l1.misses" {
		t.Errorf("snapshot names = %q, %q", snap[0].Name, snap[1].Name)
	}
	if snap[1].Count != 7 {
		t.Errorf("memsys.l1.misses = %d, want 7", snap[1].Count)
	}

	// A Sub view snapshots only its prefix.
	sub := r.Sub("memsys").Snapshot()
	if len(sub) != 1 || sub[0].Name != "memsys.l1.misses" {
		t.Errorf("sub snapshot = %+v", sub)
	}
}

func TestAttachExistingMetrics(t *testing.T) {
	c := NewCounter("hits", "demand hits")
	c.Add(3)
	r := NewRegistry()
	r.Sub("memsys.l2").Attach(c)
	got, ok := r.Lookup("memsys.l2.hits")
	if !ok || got.(*Counter) != c {
		t.Fatalf("Lookup after Attach = %v, %v", got, ok)
	}
	if v := r.Snapshot()[0]; v.Name != "memsys.l2.hits" || v.Count != 3 {
		t.Errorf("snapshot = %+v", v)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("memsys.miss_latency", "cycles per miss", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	mv := r.Snapshot()[0]
	if mv.Kind != "histogram" || mv.Count != 3 || mv.Sum != 555 {
		t.Fatalf("histogram value = %+v", mv)
	}
	if len(mv.Buckets) != 3 || mv.Buckets[0].Count != 1 || mv.Buckets[2].Count != 1 || !mv.Buckets[2].Open {
		t.Errorf("buckets = %+v", mv.Buckets)
	}
}

// TestRegistryConcurrency exercises concurrent Add/Observe/Snapshot; run
// under -race this is the registry's thread-safety guarantee.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memsys.accesses", "demand accesses")
	h := r.Histogram("lat", "latency", 8, 64, 512)
	g := r.Gauge("ipc", "ipc")

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				h.Observe(uint64(seed*i) % 1000)
				g.Set(float64(i))
				// Concurrent registration of new metrics must be safe too.
				r.Counter("dyn.counter", "registered concurrently").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, mv := range r.Snapshot() {
				_ = mv.Value
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != writers*perWriter {
		t.Errorf("accesses = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Total() != writers*perWriter {
		t.Errorf("histogram total = %d, want %d", h.Total(), writers*perWriter)
	}
	dyn, _ := r.Lookup("dyn.counter")
	if dyn.(*Counter).Value() != writers*perWriter {
		t.Errorf("dyn.counter = %d", dyn.(*Counter).Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}
