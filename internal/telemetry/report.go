package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the run-report JSON schema version. Bump on
// incompatible changes; consumers check the prefix.
const Schema = "tcp-telemetry/1"

// Run bundles the instrumentation for one simulation run: the registry all
// components attach their metrics to, the event tracer, and the cycle
// sampler. Any field may be nil except Registry; use NewRun for defaults.
type Run struct {
	Registry *Registry
	Tracer   *Tracer
	Sampler  *Sampler
}

// NewRun creates a Run with a fresh registry, the no-op tracer, and a
// sampler firing every sampleEvery cycles (0 disables sampling).
func NewRun(sampleEvery int64) *Run {
	r := &Run{Registry: NewRegistry(), Tracer: Nop()}
	if sampleEvery > 0 {
		r.Sampler = NewSampler(sampleEvery, 0)
	}
	return r
}

// RunReport is the machine-readable record of one simulation run: the full
// metric registry, the sampled time series with phase boundaries, and the
// run identity.
type RunReport struct {
	Benchmark    string `json:"benchmark"`
	Prefetcher   string `json:"prefetcher"`
	Instructions uint64 `json:"instructions"`
	Warmup       uint64 `json:"warmup"`
	Seed         uint64 `json:"seed"`
	// IPC is the measured-window headline IPC.
	IPC float64 `json:"ipc"`

	Metrics []MetricValue `json:"metrics"`
	Series  []TimeSeries  `json:"series,omitempty"`
	Phases  []Phase       `json:"phases,omitempty"`

	TraceWritten uint64 `json:"trace_written,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
}

// Report snapshots the Run into a RunReport with the given identity.
func (r *Run) Report(bench, prefetcher string, instructions, warmup, seed uint64, ipc float64) RunReport {
	rep := RunReport{
		Benchmark:    bench,
		Prefetcher:   prefetcher,
		Instructions: instructions,
		Warmup:       warmup,
		Seed:         seed,
		IPC:          ipc,
	}
	if r.Registry != nil {
		rep.Metrics = r.Registry.Snapshot()
	}
	if r.Sampler != nil {
		rep.Series = r.Sampler.Series()
		rep.Phases = r.Sampler.Phases()
	}
	if r.Tracer != nil {
		// Flush first so Written reflects every event emitted so far, not
		// just those already drained from the buffer.
		r.Tracer.Flush()
		rep.TraceWritten = r.Tracer.Written()
		rep.TraceDropped = r.Tracer.Dropped()
	}
	return rep
}

// SweepSeries is one labelled design-space sweep curve (e.g. mean IPC vs
// PHT size) exported by cmd/tcpsweep.
type SweepSeries struct {
	Name   string    `json:"name"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

// TableData is one experiment table exported verbatim.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// WorkerStats reports one distributed-sweep worker's claim-protocol
// counters (tcpsweep/tcpfigs worker mode over a shared checkpoint
// directory; see docs/DISTRIBUTED.md). Serial and gather runs have no
// workers, so the section is absent from their reports and the gathered
// JSON stays byte-identical to a serial run's.
type WorkerStats struct {
	ID             string `json:"id"`
	Claims         uint64 `json:"claims"`
	ClaimConflicts uint64 `json:"claim_conflicts,omitempty"`
	Steals         uint64 `json:"steals,omitempty"`
	StealRaces     uint64 `json:"steal_races,omitempty"`
	Heartbeats     uint64 `json:"heartbeats,omitempty"`
	LeasesLost     uint64 `json:"leases_lost,omitempty"`
	Releases       uint64 `json:"releases,omitempty"`
	WaitPolls      uint64 `json:"wait_polls,omitempty"`
	ManifestHits   uint64 `json:"manifest_hits,omitempty"`
}

// Report is the top-level machine-readable output of a cmd/ binary: one or
// more run reports and/or sweep curves and tables.
type Report struct {
	Schema string `json:"schema"`
	// Tool names the producing binary ("tcpsim", "tcpsweep").
	Tool string `json:"tool,omitempty"`

	Runs    []RunReport   `json:"runs,omitempty"`
	Sweeps  []SweepSeries `json:"sweeps,omitempty"`
	Tables  []TableData   `json:"tables,omitempty"`
	Workers []WorkerStats `json:"workers,omitempty"`

	// GeomeanClamped counts non-positive inputs clamped while computing
	// speedup geomeans during this process (see stats.Geomean): non-zero
	// values flag degenerate aggregate numbers.
	GeomeanClamped uint64 `json:"geomean_clamped,omitempty"`
}

// NewReport creates an empty report for the named tool.
func NewReport(tool string) *Report {
	return &Report{Schema: Schema, Tool: tool}
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport decodes a report from r, validating the schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("telemetry: decoding report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("telemetry: unsupported report schema %q (want %q)", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile decodes a report from the file at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}
