package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport builds a fully deterministic report exercising every part
// of the schema: counters, gauges, histograms, time series, phases, sweep
// curves and tables.
func goldenReport() *Report {
	run := NewRun(100)
	reg := run.Registry
	reg.Sub("memsys.l1").Counter("misses", "L1 demand misses").Add(250)
	reg.Sub("memsys.l1").Counter("accesses", "L1 demand accesses").Add(1000)
	reg.Sub("cpu").Counter("instructions", "retired instructions").Add(4000)
	reg.Gauge("run.ipc", "measured-window IPC").Set(1.6)
	h := reg.Histogram("memsys.miss_latency", "cycles from miss to fill", 16, 128)
	h.Observe(12)
	h.Observe(80)
	h.Observe(300)

	misses := reg.Sub("memsys.l1").Counter("misses", "")
	accesses := reg.Sub("memsys.l1").Counter("accesses", "")
	run.Sampler.Ratio("memsys.l1.miss_rate", CounterValue(misses), CounterValue(accesses))
	run.Sampler.MarkPhase("warmup", 0, 0)
	run.Sampler.Sample(100, 400)
	run.Sampler.MarkPhase("measure", 150, 500)
	run.Sampler.Sample(200, 900)

	rep := NewReport("tcpsim")
	rep.Runs = append(rep.Runs, run.Report("mcf", "tcp-8K", 1000, 500, 1, 1.6))
	rep.Sweeps = append(rep.Sweeps, SweepSeries{
		Name:   "mean IPC vs PHT size",
		Labels: []string{"2KB", "8KB"},
		Values: []float64{1.1, 1.25},
	})
	rep.Tables = append(rep.Tables, TableData{
		Title:   "Figure 11: IPC improvement",
		Headers: []string{"bench", "tcp-8K"},
		Rows:    [][]string{{"mcf", "14.0%"}},
	})
	return rep
}

// TestReportGolden locks the run-report JSON schema: any change to the
// serialised shape must be deliberate (regenerate with -update) and is a
// consumer-visible schema change.
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON differs from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := goldenReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Benchmark != "mcf" || got.Runs[0].Prefetcher != "tcp-8K" {
		t.Errorf("round-trip runs = %+v", got.Runs)
	}
	if len(got.Runs[0].Metrics) != 5 {
		t.Errorf("metrics = %d, want 5", len(got.Runs[0].Metrics))
	}
	if len(got.Runs[0].Series) != 2 || len(got.Runs[0].Phases) != 2 {
		t.Errorf("series/phases = %d/%d", len(got.Runs[0].Series), len(got.Runs[0].Phases))
	}
	if len(got.Sweeps) != 1 || len(got.Tables) != 1 {
		t.Errorf("sweeps/tables = %d/%d", len(got.Sweeps), len(got.Tables))
	}
}

func TestReadReportRejectsBadSchema(t *testing.T) {
	if _, err := ReadReport(bytes.NewReader([]byte(`{"schema":"other/9"}`))); err == nil {
		t.Error("expected schema error")
	}
}

func TestWriteAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := goldenReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "tcpsim" {
		t.Errorf("tool = %q", rep.Tool)
	}
}
