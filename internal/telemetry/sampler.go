package telemetry

// Sampler snapshots a set of probes every N cycles, producing time series
// that can be plotted over a run (IPC, miss rate, coverage/accuracy...).
// Phase boundaries (warmup end, measurement start) are recorded alongside
// so consumers can window the series.
//
// A Sampler is driven synchronously from the core's commit loop and is NOT
// safe for concurrent use; it trades locking for a two-instruction due
// check on the hot path.
type Sampler struct {
	every int64 //tcp:nosnap sampling-interval configuration fixed at construction
	next  int64

	probes []samplerProbe

	cycles []int64
	instrs []uint64
	values [][]float64 // values[p][i] = probe p at sample i

	phases    []Phase
	onSample  func(cycle int64, instructions uint64, values []float64) //tcp:nosnap host-side callback wiring; not serialisable
	maxSample int                                                      //tcp:nosnap capacity configuration fixed at construction
	truncated uint64
	scratch   []float64 //tcp:nosnap scratch buffer, dead between samples
}

type samplerProbe struct {
	name     string
	value    func() float64 // instantaneous, nil for ratio probes
	num, den func() float64 // ratio probes: delta(num)/delta(den) per window
	prevNum  float64
	prevDen  float64
}

// Phase marks the start of a named execution phase (warmup, measure).
type Phase struct {
	Name         string `json:"name"`
	Cycle        int64  `json:"cycle"`
	Instructions uint64 `json:"instructions"`
}

// TimeSeries is one probe's sampled values over a run.
type TimeSeries struct {
	Name   string    `json:"name"`
	Cycles []int64   `json:"cycles"`
	Values []float64 `json:"values"`
}

// NewSampler creates a sampler firing every everyCycles cycles (minimum 1).
// At most maxSamples samples are kept (default 1<<16 when <= 0); further
// samples are dropped and counted, bounding memory on long runs.
func NewSampler(everyCycles int64, maxSamples int) *Sampler {
	if everyCycles < 1 {
		everyCycles = 1
	}
	if maxSamples <= 0 {
		maxSamples = 1 << 16
	}
	return &Sampler{every: everyCycles, next: everyCycles, maxSample: maxSamples}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() int64 { return s.every }

// Value registers an instantaneous probe sampled at each tick.
func (s *Sampler) Value(name string, f func() float64) {
	s.probes = append(s.probes, samplerProbe{name: name, value: f})
	s.values = append(s.values, nil)
}

// Ratio registers a windowed probe: each sample records
// delta(num)/delta(den) over the sampling window (0 when den does not
// advance). MarkPhase re-baselines the window so phases do not bleed into
// each other.
func (s *Sampler) Ratio(name string, num, den func() float64) {
	s.probes = append(s.probes, samplerProbe{name: name, num: num, den: den,
		prevNum: num(), prevDen: den()})
	s.values = append(s.values, nil)
}

// OnSample installs a callback invoked after every recorded sample with
// the sample cycle, retired-instruction count, and probe values in
// registration order. Used for progress heartbeats.
func (s *Sampler) OnSample(fn func(cycle int64, instructions uint64, values []float64)) {
	s.onSample = fn
}

// Due reports whether a sample should be taken at cycle. It is called once
// per committed instruction, so it is a single comparison.
//
//tcp:hotpath — the when-off path of sampling; Sample is the slow path.
func (s *Sampler) Due(cycle int64) bool { return cycle >= s.next }

// Sample records one sample at the given cycle. Callers gate on Due.
func (s *Sampler) Sample(cycle int64, instructions uint64) {
	s.next = cycle + s.every
	if len(s.cycles) >= s.maxSample {
		s.truncated++
		return
	}
	s.cycles = append(s.cycles, cycle)
	s.instrs = append(s.instrs, instructions)
	s.scratch = s.scratch[:0]
	for i := range s.probes {
		p := &s.probes[i]
		var v float64
		if p.value != nil {
			v = p.value()
		} else {
			num, den := p.num(), p.den()
			if dd := den - p.prevDen; dd != 0 {
				v = (num - p.prevNum) / dd
			}
			p.prevNum, p.prevDen = num, den
		}
		s.values[i] = append(s.values[i], v)
		s.scratch = append(s.scratch, v)
	}
	if s.onSample != nil {
		s.onSample(cycle, instructions, s.scratch)
	}
}

// MarkPhase records a phase boundary at the given cycle and re-baselines
// every windowed probe, so the first sample of the new phase measures only
// activity inside that phase (warmup traffic cannot bleed into measured
// windows).
func (s *Sampler) MarkPhase(name string, cycle int64, instructions uint64) {
	s.phases = append(s.phases, Phase{Name: name, Cycle: cycle, Instructions: instructions})
	for i := range s.probes {
		p := &s.probes[i]
		if p.value == nil {
			p.prevNum, p.prevDen = p.num(), p.den()
		}
	}
}

// Phases returns the recorded phase boundaries in order.
func (s *Sampler) Phases() []Phase { return s.phases }

// NumSamples returns the number of recorded samples.
func (s *Sampler) NumSamples() int { return len(s.cycles) }

// Truncated returns the number of samples dropped after maxSamples.
func (s *Sampler) Truncated() uint64 { return s.truncated }

// Series returns one TimeSeries per probe, in registration order, plus the
// built-in "cpu.instructions_retired" series. All series share the same
// sample cycles.
func (s *Sampler) Series() []TimeSeries {
	out := make([]TimeSeries, 0, len(s.probes)+1)
	instr := make([]float64, len(s.instrs))
	for i, n := range s.instrs {
		instr[i] = float64(n)
	}
	out = append(out, TimeSeries{Name: "cpu.instructions_retired", Cycles: s.cycles, Values: instr})
	for i, p := range s.probes {
		out = append(out, TimeSeries{Name: p.name, Cycles: s.cycles, Values: s.values[i]})
	}
	return out
}

// SamplesInPhase returns the indices of samples belonging to the named
// phase: at or after its boundary and before the next one.
func (s *Sampler) SamplesInPhase(name string) []int {
	var from, to int64 = -1, -1
	for i, ph := range s.phases {
		if ph.Name != name {
			continue
		}
		from = ph.Cycle
		if i+1 < len(s.phases) {
			to = s.phases[i+1].Cycle
		}
		break
	}
	if from < 0 {
		return nil
	}
	var out []int
	for i, c := range s.cycles {
		if c >= from && (to < 0 || c < to) {
			out = append(out, i)
		}
	}
	return out
}

// CounterValue adapts a Counter for use as a sampler probe input.
func CounterValue(c *Counter) func() float64 {
	return func() float64 { return float64(c.Value()) }
}
