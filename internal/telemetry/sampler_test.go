package telemetry

import "testing"

func TestSamplerDueAndSeries(t *testing.T) {
	s := NewSampler(100, 0)
	c := NewCounter("n", "")
	cyc := NewCounter("cycles", "")
	s.Ratio("rate", CounterValue(c), CounterValue(cyc))
	s.Value("gauge", func() float64 { return 42 })

	if s.Due(50) {
		t.Error("due before first interval")
	}
	c.Add(30)
	cyc.Store(100)
	if !s.Due(100) {
		t.Fatal("not due at 100")
	}
	s.Sample(100, 1000)
	c.Add(10)
	cyc.Store(200)
	s.Sample(200, 2000)

	series := s.Series()
	// Built-in instructions series plus two probes.
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	if series[0].Name != "cpu.instructions_retired" || series[0].Values[1] != 2000 {
		t.Errorf("instructions series = %+v", series[0])
	}
	rate := series[1]
	if rate.Values[0] != 0.3 { // 30 events over 100 cycles
		t.Errorf("rate[0] = %v, want 0.3", rate.Values[0])
	}
	if rate.Values[1] != 0.1 { // windowed: only the 10 new events count
		t.Errorf("rate[1] = %v, want 0.1", rate.Values[1])
	}
	if series[2].Values[0] != 42 {
		t.Errorf("gauge series = %+v", series[2])
	}
}

// TestSamplerPhaseBoundary is the warmup/measure isolation guarantee:
// marking a phase re-baselines windowed probes, so activity from the
// warmup phase cannot bleed into the first measured sample.
func TestSamplerPhaseBoundary(t *testing.T) {
	s := NewSampler(100, 0)
	misses := NewCounter("misses", "")
	accesses := NewCounter("accesses", "")
	s.Ratio("missrate", CounterValue(misses), CounterValue(accesses))

	s.MarkPhase("warmup", 0, 0)
	// Warmup: 90 misses out of 100 accesses — a terrible miss rate.
	misses.Add(90)
	accesses.Add(100)
	s.Sample(100, 100)

	// Boundary at cycle 150, then a clean measured window: 1 miss / 100.
	misses.Add(5) // tail of warmup activity between last sample and boundary
	accesses.Add(10)
	s.MarkPhase("measure", 150, 110)
	misses.Add(1)
	accesses.Add(100)
	s.Sample(200, 210)

	series := s.Series()[1]
	if series.Values[0] != 0.9 {
		t.Errorf("warmup sample = %v, want 0.9", series.Values[0])
	}
	// Without re-baselining this would be (5+1)/(10+100) ≈ 0.055.
	if series.Values[1] != 0.01 {
		t.Errorf("measured sample = %v, want 0.01 (warmup bled in)", series.Values[1])
	}

	warm := s.SamplesInPhase("warmup")
	meas := s.SamplesInPhase("measure")
	if len(warm) != 1 || warm[0] != 0 {
		t.Errorf("warmup samples = %v", warm)
	}
	if len(meas) != 1 || meas[0] != 1 {
		t.Errorf("measure samples = %v", meas)
	}
	if ph := s.Phases(); len(ph) != 2 || ph[1].Name != "measure" || ph[1].Cycle != 150 {
		t.Errorf("phases = %+v", ph)
	}
}

func TestSamplerMaxSamples(t *testing.T) {
	s := NewSampler(1, 3)
	for c := int64(1); c <= 10; c++ {
		if s.Due(c) {
			s.Sample(c, uint64(c))
		}
	}
	if s.NumSamples() != 3 {
		t.Errorf("samples = %d, want 3", s.NumSamples())
	}
	if s.Truncated() != 7 {
		t.Errorf("truncated = %d, want 7", s.Truncated())
	}
}

func TestSamplerOnSampleCallback(t *testing.T) {
	s := NewSampler(10, 0)
	s.Value("v", func() float64 { return 1 })
	var gotCycle int64
	var gotInstr uint64
	s.OnSample(func(cycle int64, instr uint64, values []float64) {
		gotCycle, gotInstr = cycle, instr
		if len(values) != 1 || values[0] != 1 {
			t.Errorf("values = %v", values)
		}
	})
	s.Sample(10, 77)
	if gotCycle != 10 || gotInstr != 77 {
		t.Errorf("callback got (%d, %d)", gotCycle, gotInstr)
	}
}

// TestSamplerClockJump pins the due/rebase semantics under discontinuous
// commit clocks, which the measured-phase skip engine and long-latency
// stalls both produce: when the clock lands past one or more due
// boundaries, exactly ONE sample is taken at the landing cycle and the
// grid rebases there (next due = landing + every). Sample timing is thus a
// function of the observed commit-cycle sequence alone — two engines that
// agree on commit cycles agree on every sample, no matter how either
// advances its clock in between.
func TestSamplerClockJump(t *testing.T) {
	cases := []struct {
		name    string
		every   int64
		commits []int64 // observed commit cycles, in order
		want    []int64 // cycles at which samples must land
	}{
		{"regular grid", 100,
			[]int64{50, 100, 150, 200, 300}, []int64{100, 200, 300}},
		{"jump past three boundaries samples once", 100,
			[]int64{100, 450, 460}, []int64{100, 450}},
		{"rebase after jump, old grid is dead", 100,
			// After sampling at 450 the next due is 550, not 500.
			[]int64{100, 450, 500, 549, 550}, []int64{100, 450, 550}},
		{"overshoot by one rebases off-grid", 100,
			[]int64{101, 200, 201, 301}, []int64{101, 201, 301}},
		{"huge jump still one sample", 100,
			[]int64{1 << 40}, []int64{1 << 40}},
		{"stall spanning many windows", 7,
			[]int64{6, 7, 8, 70, 76, 77}, []int64{7, 70, 77}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSampler(tc.every, 0)
			var got []int64
			for _, c := range tc.commits {
				if s.Due(c) {
					s.Sample(c, uint64(c))
					got = append(got, c)
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("sampled at %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("sampled at %v, want %v", got, tc.want)
				}
			}
			if s.NumSamples() != len(tc.want) {
				t.Errorf("NumSamples = %d, want %d", s.NumSamples(), len(tc.want))
			}
		})
	}
}
