package telemetry

import (
	"fmt"

	"tagprefetch/internal/checkpoint"
)

// Save implements checkpoint.Snapshotter for the sampler: the next-sample
// cycle, per-probe ratio baselines, all recorded samples, and the phase
// boundaries. Probe registration (names and value functions) is structural
// — the restoring run re-registers the same probes — so only names are
// stored, for validation.
func (s *Sampler) Save(w *checkpoint.Writer) error {
	w.Section("telemetry.sampler")
	w.I64(s.next)
	w.U64(s.truncated)
	w.U32(uint32(len(s.probes)))
	for i := range s.probes {
		p := &s.probes[i]
		w.String(p.name)
		w.F64(p.prevNum)
		w.F64(p.prevDen)
	}
	w.I64s(s.cycles)
	w.U64s(s.instrs)
	for i := range s.probes {
		w.F64s(s.values[i])
	}
	w.U32(uint32(len(s.phases)))
	for _, ph := range s.phases {
		w.String(ph.Name)
		w.I64(ph.Cycle)
		w.U64(ph.Instructions)
	}
	return nil
}

// Restore implements checkpoint.Snapshotter. The sampler must have the
// same probes registered, in the same order, as the one that was saved.
func (s *Sampler) Restore(r *checkpoint.Reader) error {
	if err := r.Section("telemetry.sampler"); err != nil {
		return err
	}
	s.next = r.I64()
	s.truncated = r.U64()
	if n := int(r.U32()); r.Err() == nil && n != len(s.probes) {
		return fmt.Errorf("sampler: checkpoint has %d probes, want %d", n, len(s.probes))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i := range s.probes {
		p := &s.probes[i]
		if name := r.String(); r.Err() == nil && name != p.name {
			return fmt.Errorf("sampler: checkpoint probe %q, want %q", name, p.name)
		}
		p.prevNum = r.F64()
		p.prevDen = r.F64()
	}
	s.cycles = r.I64s()
	s.instrs = r.U64s()
	if len(s.instrs) != len(s.cycles) {
		return fmt.Errorf("sampler: %d instruction samples for %d cycle samples", len(s.instrs), len(s.cycles))
	}
	for i := range s.probes {
		s.values[i] = r.F64s()
		if r.Err() == nil && len(s.values[i]) != len(s.cycles) {
			return fmt.Errorf("sampler: probe %q has %d samples, want %d",
				s.probes[i].name, len(s.values[i]), len(s.cycles))
		}
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	s.phases = s.phases[:0]
	for i := 0; i < n; i++ {
		ph := Phase{Name: r.String(), Cycle: r.I64(), Instructions: r.U64()}
		if r.Err() != nil {
			break
		}
		s.phases = append(s.phases, ph)
	}
	return r.Err()
}
