package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Level classifies event importance for sink-side filtering.
type Level uint8

// Event levels, in ascending importance.
const (
	LevelDebug Level = iota
	LevelInfo
)

// String returns "debug" or "info".
func (l Level) String() string {
	if l == LevelDebug {
		return "debug"
	}
	return "info"
}

// ParseLevel maps "debug"/"info" to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown level %q", s)
}

// Event is one discrete simulator occurrence (a prefetch issued, an MSHR
// stall, a PHT eviction...). It is a flat value type so that constructing
// and emitting one costs no allocation, which keeps the disabled-tracer
// hot path free.
type Event struct {
	Cycle int64
	Type  string // dot-separated, e.g. "prefetch.issued"
	Level Level
	Addr  uint64 // block or table address, 0 if not applicable
	PC    uint64 // program counter, 0 if not applicable
	Value int64  // event-specific scalar (latency, count, ...)
	Note  string // free-form annotation (bench name on run.start, ...)
}

// Tracer collects Events and writes them as JSON Lines. The zero-cost
// default is Nop(): components hold a non-nil *Tracer at all times, so the
// hot path needs no nil checks — a disabled tracer's Emit is one branch.
//
// Buffering is bounded: events accumulate in a fixed-capacity buffer that
// is flushed to the sink when full; once MaxEvents have been written,
// further events are dropped and counted instead of growing the output
// without bound.
type Tracer struct {
	enabled bool
	min     Level
	max     uint64 // cap on events written (0 = unlimited)

	mu      sync.Mutex
	w       io.Writer
	enc     *json.Encoder
	buf     []Event
	written uint64
	dropped atomic.Uint64
}

// TracerOptions configures NewTracer. Zero fields take defaults.
type TracerOptions struct {
	// MinLevel drops events below this level at the emit site.
	MinLevel Level
	// BufferEvents is the in-memory buffer capacity before a flush
	// (default 4096).
	BufferEvents int
	// MaxEvents bounds the total number of events written; once reached,
	// events are dropped and counted (default 0: unlimited).
	MaxEvents uint64
}

var nop = &Tracer{}

// Nop returns the shared disabled tracer: Emit is a no-op costing one
// branch and zero allocations.
func Nop() *Tracer { return nop }

// NewTracer creates an enabled tracer writing JSONL to w.
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	if opts.BufferEvents <= 0 {
		opts.BufferEvents = 4096
	}
	return &Tracer{
		enabled: true,
		min:     opts.MinLevel,
		max:     opts.MaxEvents,
		w:       w,
		enc:     json.NewEncoder(w),
		buf:     make([]Event, 0, opts.BufferEvents),
	}
}

// Enabled reports whether events at level l would be recorded. Call sites
// use it to skip expensive event-field computation.
//
//tcp:hotpath — consulted before building event fields on per-cycle paths.
func (t *Tracer) Enabled(l Level) bool { return t.enabled && l >= t.min }

// Emit records ev. Disabled tracers and filtered levels return
// immediately with zero allocations: the whole slow path lives in
// emitSlow so this gate stays small enough to inline into per-cycle code.
//
//tcp:hotpath — the disabled-tracer fast path is one branch; anything that
// can allocate belongs in emitSlow.
func (t *Tracer) Emit(ev Event) {
	if !t.enabled || ev.Level < t.min {
		return
	}
	t.emitSlow(ev)
}

// emitSlow buffers ev on an enabled tracer, flushing to the sink when the
// buffer fills. The append never grows the buffer: capacity is fixed at
// construction and flushLocked resets the length.
//
//tcp:coldpath runs only on enabled tracers past the level filter; the append stays within the capacity fixed at construction
func (t *Tracer) emitSlow(ev Event) {
	t.mu.Lock()
	if t.max > 0 && t.written+uint64(len(t.buf)) >= t.max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.buf = append(t.buf, ev)
	full := len(t.buf) == cap(t.buf)
	if full {
		t.flushLocked()
	}
	t.mu.Unlock()
}

type eventJSON struct {
	Cycle int64  `json:"cycle"`
	Type  string `json:"type"`
	Level string `json:"level"`
	Addr  string `json:"addr,omitempty"`
	PC    string `json:"pc,omitempty"`
	Value int64  `json:"value,omitempty"`
	Note  string `json:"note,omitempty"`
}

func (t *Tracer) flushLocked() {
	for _, ev := range t.buf {
		ej := eventJSON{
			Cycle: ev.Cycle,
			Type:  ev.Type,
			Level: ev.Level.String(),
			Value: ev.Value,
			Note:  ev.Note,
		}
		if ev.Addr != 0 {
			ej.Addr = fmt.Sprintf("0x%x", ev.Addr)
		}
		if ev.PC != 0 {
			ej.PC = fmt.Sprintf("0x%x", ev.PC)
		}
		if err := t.enc.Encode(ej); err != nil {
			// A failing sink cannot stall the simulation: drop the rest.
			t.dropped.Add(uint64(len(t.buf)))
			t.buf = t.buf[:0]
			return
		}
		t.written++
	}
	t.buf = t.buf[:0]
}

// Flush writes all buffered events to the sink.
func (t *Tracer) Flush() {
	if !t.enabled {
		return
	}
	t.mu.Lock()
	t.flushLocked()
	t.mu.Unlock()
}

// Written returns the number of events written to the sink so far.
func (t *Tracer) Written() uint64 {
	if !t.enabled {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.written
}

// Dropped returns the number of events dropped (MaxEvents reached or sink
// failure).
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// defaultTracer is the process-wide tracer used by code without run-scoped
// plumbing (e.g. stats.Geomean clamp warnings). It starts as Nop().
var defaultTracer atomic.Pointer[Tracer]

func init() { defaultTracer.Store(nop) }

// Default returns the process-wide default tracer (never nil).
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs t as the process-wide default tracer; nil restores
// the no-op tracer.
func SetDefault(t *Tracer) {
	if t == nil {
		t = nop
	}
	defaultTracer.Store(t)
}
