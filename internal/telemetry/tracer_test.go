package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNopTracerZeroAllocs(t *testing.T) {
	tr := Nop()
	ev := Event{Cycle: 123, Type: "prefetch.issued", Level: LevelInfo, Addr: 0x1000}
	allocs := testing.AllocsPerRun(1000, func() { tr.Emit(ev) })
	if allocs != 0 {
		t.Errorf("Nop tracer Emit allocates %v per event, want 0", allocs)
	}
	if tr.Enabled(LevelInfo) {
		t.Error("Nop tracer reports enabled")
	}
}

func TestTracerJSONLAndLevels(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{MinLevel: LevelInfo})
	tr.Emit(Event{Cycle: 1, Type: "prefetch.issued", Level: LevelInfo, Addr: 0x2000, PC: 0x400000})
	tr.Emit(Event{Cycle: 2, Type: "prefetch.dropped", Level: LevelDebug}) // filtered
	tr.Emit(Event{Cycle: 3, Type: "mshr.stall", Level: LevelInfo, Value: 42})
	tr.Flush()

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (debug filtered)", len(lines))
	}
	if lines[0]["type"] != "prefetch.issued" || lines[0]["addr"] != "0x2000" {
		t.Errorf("line 0 = %v", lines[0])
	}
	if lines[1]["value"] != float64(42) {
		t.Errorf("line 1 = %v", lines[1])
	}
	if tr.Written() != 2 {
		t.Errorf("written = %d", tr.Written())
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{BufferEvents: 4, MaxEvents: 6})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: int64(i), Type: "e", Level: LevelInfo})
	}
	tr.Flush()
	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Errorf("events written = %d, want 6 (MaxEvents)", got)
	}
	if tr.Dropped() != 4 {
		t.Errorf("dropped = %d, want 4", tr.Dropped())
	}
}

func TestDefaultTracerSwap(t *testing.T) {
	if Default() != Nop() {
		t.Fatal("default tracer is not Nop at start")
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{})
	SetDefault(tr)
	defer SetDefault(nil)
	Default().Emit(Event{Type: "stats.geomean_clamped", Level: LevelInfo, Value: 2})
	Default().Flush()
	if !strings.Contains(buf.String(), "geomean_clamped") {
		t.Errorf("default tracer did not record: %q", buf.String())
	}
	SetDefault(nil)
	if Default() != Nop() {
		t.Error("SetDefault(nil) did not restore Nop")
	}
}
