package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestWorkerStatsOmitempty pins the serialization guarantee that keeps a
// gathered distributed report byte-identical to a serial run's: a report
// with no workers must not emit a "workers" key at all, and a WorkerStats
// with only identity set must stay minimal. Every WorkerStats field except
// the always-present ID and Claims must carry omitempty, so protocol
// counters that stayed zero add no bytes.
func TestWorkerStatsOmitempty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewReport("tcpsweep").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"workers"`)) {
		t.Errorf("report with zero workers serializes a workers key:\n%s", buf.String())
	}

	data, err := json.Marshal(WorkerStats{ID: "w1", Claims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"id":"w1","claims":3}`; string(data) != want {
		t.Errorf("minimal WorkerStats = %s, want %s", data, want)
	}

	rt := reflect.TypeOf(WorkerStats{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := f.Tag.Get("json")
		switch f.Name {
		case "ID", "Claims":
			// Identity and the headline counter always serialize.
			if strings.Contains(tag, "omitempty") {
				t.Errorf("field %s unexpectedly omitempty (tag %q)", f.Name, tag)
			}
		default:
			if !strings.Contains(tag, ",omitempty") {
				t.Errorf("field %s missing omitempty (tag %q): zero counters would bloat gathered reports", f.Name, tag)
			}
		}
	}
}

// TestWorkerStatsRoundTrip: a populated workers section survives
// write/read, and reading a serial report yields a nil Workers slice.
func TestWorkerStatsRoundTrip(t *testing.T) {
	rep := NewReport("tcpsweep")
	rep.Workers = append(rep.Workers, WorkerStats{ID: "w1", Claims: 4, Steals: 1, Heartbeats: 9})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Workers, rep.Workers) {
		t.Errorf("workers round trip = %+v, want %+v", back.Workers, rep.Workers)
	}

	buf.Reset()
	if err := NewReport("tcpsweep").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	serial, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Workers != nil {
		t.Errorf("serial report decoded Workers = %+v, want nil", serial.Workers)
	}
}
