package trace

import (
	"bytes"
	"io"
	"testing"

	"tagprefetch/internal/addr"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must either
// decode records or fail cleanly, never panic or loop.
func FuzzReader(f *testing.F) {
	geo := addr.MustGeometry(32*1024, 1, 32)
	// Seed with a valid two-record trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(MakeMiss(geo, 0x1000, 0x400000, 1, false)) //nolint:errcheck
	w.Write(MakeMiss(geo, 0x2000, 0x400004, 2, true))  //nolint:errcheck
	w.Flush()                                          //nolint:errcheck
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x50, 0x43, 0x54}) // magic only
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), geo)
		for i := 0; i < 1<<16; i++ { // bounded: each record consumes 32 bytes
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // clean failure
			}
		}
	})
}
