// Package trace defines the memory-reference event types exchanged between
// the simulated core, the memory hierarchy, the prefetchers and the
// profiler, plus a compact binary on-disk format so miss traces can be
// captured once and re-analysed offline (the methodology of Section 3 of
// the paper, which profiles L1 data-cache miss address streams).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tagprefetch/internal/addr"
)

// Ref is one memory reference issued by the core.
type Ref struct {
	PC    addr.Addr
	Addr  addr.Addr
	Write bool
}

// Miss is one L1 data-cache miss as observed by a prefetcher sitting
// between L1 and L2 (Figure 10 of the paper). Index and Tag are the miss
// index and miss tag under the L1 geometry; PC is the address of the
// load/store that missed (needed only by PC-based prefetchers like DBCP).
type Miss struct {
	Addr  addr.Addr
	PC    addr.Addr
	Index uint32
	Tag   uint64
	Cycle int64
	Write bool
}

// MakeMiss builds a Miss for address a under geometry g.
func MakeMiss(g addr.Geometry, a, pc addr.Addr, cycle int64, write bool) Miss {
	return Miss{
		Addr:  g.Block(a),
		PC:    pc,
		Index: g.Index(a),
		Tag:   g.Tag(a),
		Cycle: cycle,
		Write: write,
	}
}

const magic = uint32(0x54435031) // "TCP1"

// Writer streams Miss records to an io.Writer in a compact binary format.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	begun bool
}

// NewWriter creates a trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one miss record.
func (tw *Writer) Write(m Miss) error {
	if !tw.begun {
		if err := binary.Write(tw.w, binary.LittleEndian, magic); err != nil {
			return err
		}
		tw.begun = true
	}
	var buf [8 * 4]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.Addr))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.PC))
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.Cycle))
	flags := uint64(0)
	if m.Write {
		flags = 1
	}
	binary.LittleEndian.PutUint64(buf[24:], flags)
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Flush flushes buffered records. Writing the header even for empty traces.
func (tw *Writer) Flush() error {
	if !tw.begun {
		if err := binary.Write(tw.w, binary.LittleEndian, magic); err != nil {
			return err
		}
		tw.begun = true
	}
	return tw.w.Flush()
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Reader reads Miss records written by Writer. Index/Tag fields are
// recomputed under the supplied L1 geometry.
type Reader struct {
	r    *bufio.Reader
	g    addr.Geometry
	init bool
}

// NewReader creates a trace reader decoding under geometry g.
func NewReader(r io.Reader, g addr.Geometry) *Reader {
	return &Reader{r: bufio.NewReader(r), g: g}
}

// Read returns the next record, or io.EOF at end of trace.
func (tr *Reader) Read() (Miss, error) {
	if !tr.init {
		var m uint32
		if err := binary.Read(tr.r, binary.LittleEndian, &m); err != nil {
			return Miss{}, fmt.Errorf("trace: reading header: %w", err)
		}
		if m != magic {
			return Miss{}, errors.New("trace: bad magic")
		}
		tr.init = true
	}
	var buf [8 * 4]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Miss{}, err
	}
	a := addr.Addr(binary.LittleEndian.Uint64(buf[0:]))
	pc := addr.Addr(binary.LittleEndian.Uint64(buf[8:]))
	cyc := int64(binary.LittleEndian.Uint64(buf[16:]))
	write := binary.LittleEndian.Uint64(buf[24:])&1 != 0
	return MakeMiss(tr.g, a, pc, cyc, write), nil
}

// Buffer is an in-memory miss trace with bounded capacity; once full it
// stops recording (the profiler works on a prefix of the stream).
type Buffer struct {
	Misses  []Miss
	cap     int
	dropped uint64
}

// NewBuffer creates a buffer holding at most capacity records
// (capacity <= 0 means unbounded).
func NewBuffer(capacity int) *Buffer {
	b := &Buffer{cap: capacity}
	if capacity > 0 {
		b.Misses = make([]Miss, 0, capacity)
	}
	return b
}

// Record appends m if capacity remains.
func (b *Buffer) Record(m Miss) {
	if b.cap > 0 && len(b.Misses) >= b.cap {
		b.dropped++
		return
	}
	b.Misses = append(b.Misses, m)
}

// Dropped returns the number of records rejected because the buffer filled.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Len returns the number of recorded misses.
func (b *Buffer) Len() int { return len(b.Misses) }
