package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"tagprefetch/internal/addr"
)

func g() addr.Geometry { return addr.MustGeometry(32*1024, 1, 32) }

func TestMakeMiss(t *testing.T) {
	geo := g()
	m := MakeMiss(geo, 0x12345678, 0x400100, 99, true)
	if m.Addr != geo.Block(0x12345678) {
		t.Errorf("addr = %#x", m.Addr)
	}
	if m.Index != geo.Index(0x12345678) || m.Tag != geo.Tag(0x12345678) {
		t.Errorf("index/tag = %d/%d", m.Index, m.Tag)
	}
	if m.Cycle != 99 || !m.Write || m.PC != 0x400100 {
		t.Errorf("miss = %+v", m)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	geo := g()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Miss{
		MakeMiss(geo, 0x1000, 0x400000, 1, false),
		MakeMiss(geo, 0xdeadbe00, 0x400008, 2, true),
		MakeMiss(geo, 0x7fffffffff00, 0x400010, 1<<40, false),
	}
	for _, m := range want {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}

	r := NewReader(&buf, geo)
	for i, wm := range want {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if m != wm {
			t.Errorf("record %d = %+v, want %+v", i, m, wm)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, g())
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF on empty trace, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), g())
	if _, err := r.Read(); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestReaderTruncated(t *testing.T) {
	geo := g()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(MakeMiss(geo, 0x1000, 0, 1, false))
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-4]
	r := NewReader(bytes.NewReader(trunc), geo)
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF on truncated record, got %v", err)
	}
}

func TestBufferCapacity(t *testing.T) {
	b := NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Record(Miss{Cycle: int64(i)})
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	unbounded := NewBuffer(0)
	for i := 0; i < 100; i++ {
		unbounded.Record(Miss{})
	}
	if unbounded.Len() != 100 || unbounded.Dropped() != 0 {
		t.Errorf("unbounded len=%d dropped=%d", unbounded.Len(), unbounded.Dropped())
	}
}

func TestRoundTripProperty(t *testing.T) {
	geo := g()
	f := func(addrs []uint32, pcs []uint16, writes []bool) bool {
		n := len(addrs)
		if len(pcs) < n {
			n = len(pcs)
		}
		if len(writes) < n {
			n = len(writes)
		}
		var want []Miss
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := 0; i < n; i++ {
			m := MakeMiss(geo, addr.Addr(addrs[i]), addr.Addr(pcs[i]), int64(i), writes[i])
			want = append(want, m)
			if err := w.Write(m); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf, geo)
		for i := 0; i < n; i++ {
			got, err := r.Read()
			if err != nil || got != want[i] {
				return false
			}
		}
		_, err := r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
