package workload

import (
	"fmt"

	"tagprefetch/internal/checkpoint"
)

// The generator's static structure — loop body, slot-to-stream binding,
// branch periods, chase permutations — is rebuilt deterministically by
// Reset(seed), so a checkpoint stores only the dynamic cursors. Restore
// therefore requires a generator freshly constructed from the same Spec and
// seed (which the sim machine guarantees); it validates the workload name
// and every structural length against that expectation.

// Per-stream type tags, written before each stream's cursor state so a
// structural mismatch fails loudly instead of mis-parsing.
const (
	streamTagSweep uint8 = iota + 1
	streamTagChase
	streamTagRandom
	streamTagColumn
	streamTagThrottled
)

// Save implements checkpoint.Snapshotter.
func (s *synth) Save(w *checkpoint.Writer) error {
	w.Section("workload")
	w.String(s.spec.Name)
	w.U64(s.rng.State())
	w.Int(s.slotIdx)
	w.U64(s.icount)
	w.U64(s.lastLoad)
	w.U64s(s.lastOf)
	w.U32(uint32(len(s.branch)))
	for i := range s.branch {
		w.Int(s.branch[i].count)
	}
	w.U32(uint32(len(s.streams)))
	for _, st := range s.streams {
		st.save(w)
	}
	return nil
}

// Restore implements checkpoint.Snapshotter.
func (s *synth) Restore(r *checkpoint.Reader) error {
	if err := r.Section("workload"); err != nil {
		return err
	}
	if name := r.String(); r.Err() == nil && name != s.spec.Name {
		return fmt.Errorf("workload: checkpoint for %q, generator is %q", name, s.spec.Name)
	}
	s.rng.SetState(r.U64())
	idx := r.Int()
	s.icount = r.U64()
	s.lastLoad = r.U64()
	r.ReadU64s(s.lastOf)
	if err := r.Err(); err != nil {
		return err
	}
	if idx < 0 || idx >= len(s.body) {
		return fmt.Errorf("workload: checkpoint slot index %d out of range", idx)
	}
	s.slotIdx = idx
	if n := int(r.U32()); r.Err() == nil && n != len(s.branch) {
		return fmt.Errorf("workload: checkpoint %d branch patterns, want %d", n, len(s.branch))
	}
	for i := range s.branch {
		s.branch[i].count = r.Int()
	}
	if n := int(r.U32()); r.Err() == nil && n != len(s.streams) {
		return fmt.Errorf("workload: checkpoint %d streams, want %d", n, len(s.streams))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for _, st := range s.streams {
		if err := st.restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// checkTag validates a stream's type tag on restore.
func checkTag(r *checkpoint.Reader, want uint8, kind string) error {
	got := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("workload: checkpoint stream tag %d, want %s (%d)", got, kind, want)
	}
	return nil
}

func (t *throttled) save(w *checkpoint.Writer) {
	w.U8(streamTagThrottled)
	w.Int(t.count)
	w.U64(t.last)
	w.Bool(t.has)
	t.inner.save(w)
}

func (t *throttled) restore(r *checkpoint.Reader) error {
	if err := checkTag(r, streamTagThrottled, "throttled"); err != nil {
		return err
	}
	t.count = r.Int()
	t.last = r.U64()
	t.has = r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	return t.inner.restore(r)
}

func (s *sweepStream) save(w *checkpoint.Writer) {
	w.U8(streamTagSweep)
	w.U64(s.pos)
}

func (s *sweepStream) restore(r *checkpoint.Reader) error {
	if err := checkTag(r, streamTagSweep, "sweep"); err != nil {
		return err
	}
	pos := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if pos >= s.footprint {
		return fmt.Errorf("workload: sweep position %d beyond footprint %d", pos, s.footprint)
	}
	s.pos = pos
	return nil
}

func (c *chaseStream) save(w *checkpoint.Writer) {
	w.U8(streamTagChase)
	w.U32(c.cur)
}

func (c *chaseStream) restore(r *checkpoint.Reader) error {
	if err := checkTag(r, streamTagChase, "chase"); err != nil {
		return err
	}
	cur := r.U32()
	if err := r.Err(); err != nil {
		return err
	}
	if int(cur) >= len(c.succ) {
		return fmt.Errorf("workload: chase cursor %d beyond permutation of %d", cur, len(c.succ))
	}
	c.cur = cur
	return nil
}

func (s *randomStream) save(w *checkpoint.Writer) {
	w.U8(streamTagRandom)
	w.U64(s.r.State())
}

func (s *randomStream) restore(r *checkpoint.Reader) error {
	if err := checkTag(r, streamTagRandom, "random"); err != nil {
		return err
	}
	s.r.SetState(r.U64())
	return r.Err()
}

func (s *columnStream) save(w *checkpoint.Writer) {
	w.U8(streamTagColumn)
	w.U64(s.row)
	w.U64(s.col)
}

func (s *columnStream) restore(r *checkpoint.Reader) error {
	if err := checkTag(r, streamTagColumn, "column"); err != nil {
		return err
	}
	row, col := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if row >= s.rows || col >= s.cols {
		return fmt.Errorf("workload: column cursor (%d,%d) beyond (%d,%d)", row, col, s.rows, s.cols)
	}
	s.row, s.col = row, col
	return nil
}
