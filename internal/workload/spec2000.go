package workload

import (
	"fmt"
	"sort"
)

// KB and MB are byte-size helpers for stream footprints.
const (
	KB = 1024
	MB = 1024 * 1024
)

// IdealOrder lists the 26 SPEC CPU2000 benchmarks in the paper's figure
// order: ascending potential IPC improvement with an ideal L2 data cache
// (Figure 1, left to right).
var IdealOrder = []string{
	"fma3d", "equake", "eon", "crafty", "gzip", "sixtrack", "vortex",
	"perlbmk", "mesa", "galgel", "apsi", "bzip2", "gap", "wupwise",
	"parser", "facerec", "vpr", "twolf", "lucas", "gcc", "applu", "art",
	"mgrid", "swim", "ammp", "mcf",
}

// specs is the benchmark model catalog.
//
// Calibration recipe (DESIGN.md §6): stream Weights are loop-body memory
// slots, so a stream's share of the L1 miss stream is
// slots x missRate / totalSlots, with missRate ~ blockBytes/stride for
// sweeps (0.25 at stride 8), ~1 for chases/randoms/columns, ~0 for
// L1-resident hot loops. Hot-loop weights therefore set each benchmark's
// overall L1 miss rate; footprints set the unique-tag counts of Figure 2
// (one tag per 32 KiB) and whether the working set exceeds the 1 MB L2
// (which fixes the ideal-L2 potential of Figure 1); sweep streams produce
// the across-set shared patterns that favour TCP-8K, chase streams the
// private per-set patterns that favour TCP-8M plus serialised misses;
// random streams defeat correlation (crafty, twolf); column streams emit
// the strided per-set tag sequences of Figure 15.
var specs = map[string]Spec{
	// ---- low ideal-L2 potential: cache-resident codes -------------------
	"fma3d": { // FP crash simulation: tiny spread, enormous per-set reuse
		Name: "fma3d", BodyLen: 108, MemFrac: 0.30, StoreFrac: 0.35,
		BranchFrac: 0.06, FPFrac: 0.5, MultFrac: 0.1, DepProb: 0.45,
		LoadUseProb: 0.3, BranchPredictability: 0.98,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 31, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 64 * KB, Stride: 8},
		},
	},
	"equake": { // FP earthquake sim: sparse matrix mostly L2-resident
		Name: "equake", BodyLen: 80, MemFrac: 0.34, StoreFrac: 0.3,
		BranchFrac: 0.07, FPFrac: 0.45, MultFrac: 0.12, DepProb: 0.45,
		LoadUseProb: 0.35, BranchPredictability: 0.97,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 25, Footprint: 20 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 96 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 1, Footprint: 96 * KB, Stride: 8},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 128},
		},
	},
	"eon": { // C++ ray tracer: good temporal, poor spatial locality
		Name: "eon", BodyLen: 125, MemFrac: 0.32, StoreFrac: 0.4,
		BranchFrac: 0.13, FPFrac: 0.25, MultFrac: 0.08, DepProb: 0.5,
		LoadUseProb: 0.35, BranchPredictability: 0.93,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 39, Footprint: 20 * KB},
			{Kind: RandomKind, Weight: 1, Footprint: 64 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 56},
		},
	},
	"crafty": { // chess: hash tables -> near-random sequences (Fig 5)
		Name: "crafty", BodyLen: 122, MemFrac: 0.32, StoreFrac: 0.3,
		BranchFrac: 0.16, FPFrac: 0, MultFrac: 0.05, DepProb: 0.5,
		LoadUseProb: 0.4, BranchPredictability: 0.88,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 39, Footprint: 20 * KB},
			{Kind: RandomKind, Weight: 1, Footprint: 96 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 28},
		},
	},
	"gzip": { // compression: windows swept repeatedly, L2-resident
		Name: "gzip", BodyLen: 112, MemFrac: 0.33, StoreFrac: 0.35,
		BranchFrac: 0.14, FPFrac: 0, MultFrac: 0.03, DepProb: 0.5,
		LoadUseProb: 0.4, BranchPredictability: 0.91,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 33, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 2, Footprint: 144 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 2, Footprint: 144 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 24},
		},
	},
	"sixtrack": { // FP particle tracking: small arrays, loop-heavy
		Name: "sixtrack", BodyLen: 203, MemFrac: 0.30, StoreFrac: 0.3,
		BranchFrac: 0.05, FPFrac: 0.55, MultFrac: 0.15, DepProb: 0.45,
		LoadUseProb: 0.3, BranchPredictability: 0.98,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 59, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 96 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 96 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 36},
		},
	},
	"vortex": { // OO database: mixed pointer/scan, slightly beyond L2
		Name: "vortex", BodyLen: 133, MemFrac: 0.36, StoreFrac: 0.4,
		BranchFrac: 0.14, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.4, BranchPredictability: 0.94,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 45, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 2, Footprint: 256 * KB, Stride: 16},
			{Kind: RandomKind, Weight: 1, Footprint: 64 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 11},
		},
	},
	"perlbmk": { // perl interpreter: pointer chasing over a mid-size heap
		Name: "perlbmk", BodyLen: 129, MemFrac: 0.34, StoreFrac: 0.4,
		BranchFrac: 0.16, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.92,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 43, Footprint: 20 * KB},
			{Kind: ChaseKind, Weight: 1, Footprint: 256 * KB, Block: 32},
			{Kind: ChaseKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 20},
		},
	},
	"mesa": { // 3D graphics library: frame-buffer sweeps near L2 size
		Name: "mesa", BodyLen: 100, MemFrac: 0.32, StoreFrac: 0.45,
		BranchFrac: 0.08, FPFrac: 0.35, MultFrac: 0.1, DepProb: 0.45,
		LoadUseProb: 0.3, BranchPredictability: 0.96,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 29, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 192 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 192 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 16},
		},
	},
	"galgel": { // FP fluid dynamics: blocked solver just beyond L2
		Name: "galgel", BodyLen: 145, MemFrac: 0.33, StoreFrac: 0.3,
		BranchFrac: 0.05, FPFrac: 0.55, MultFrac: 0.18, DepProb: 0.45,
		LoadUseProb: 0.3, BranchPredictability: 0.98,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 45, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 2, Footprint: 256 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 192 * KB, Stride: 16},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 8},
		},
	},
	"apsi": { // FP weather: very large working set but compute-rich
		Name: "apsi", BodyLen: 167, MemFrac: 0.24, StoreFrac: 0.3,
		BranchFrac: 0.05, FPFrac: 0.55, MultFrac: 0.15, DepProb: 0.4,
		LoadUseProb: 0.25, BranchPredictability: 0.98,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 38, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 384 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 8},
		},
	},
	"bzip2": { // compression: block sorting over ~1.5 MB
		Name: "bzip2", BodyLen: 244, MemFrac: 0.34, StoreFrac: 0.35,
		BranchFrac: 0.14, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.9,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 80, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 64 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 4},
		},
	},
	"gap": { // group theory: large heap, moderate memory intensity
		Name: "gap", BodyLen: 227, MemFrac: 0.30, StoreFrac: 0.35,
		BranchFrac: 0.12, FPFrac: 0, MultFrac: 0.04, DepProb: 0.45,
		LoadUseProb: 0.35, BranchPredictability: 0.93,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 66, Footprint: 20 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 320 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 320 * KB, Stride: 32},
		},
	},
	"wupwise": { // FP quantum chromodynamics: big dense sweeps
		Name: "wupwise", BodyLen: 268, MemFrac: 0.28, StoreFrac: 0.3,
		BranchFrac: 0.04, FPFrac: 0.6, MultFrac: 0.2, DepProb: 0.4,
		LoadUseProb: 0.25, BranchPredictability: 0.99,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 72, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 2, Footprint: 512 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
		},
	},
	"parser": { // NLP: dictionary pointer walks
		Name: "parser", BodyLen: 134, MemFrac: 0.35, StoreFrac: 0.35,
		BranchFrac: 0.15, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.91,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 45, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 1, Footprint: 384 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 96 * KB, Block: 32},
			{Kind: ChaseKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 6},
		},
	},
	"facerec": { // FP face recognition: private per-set patterns (TCP-8M)
		Name: "facerec", BodyLen: 112, MemFrac: 0.33, StoreFrac: 0.25,
		BranchFrac: 0.06, FPFrac: 0.5, MultFrac: 0.15, DepProb: 0.45,
		LoadUseProb: 0.3, BranchPredictability: 0.97,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 34, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 2, Footprint: 768 * KB, Block: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 768 * KB, Stride: 8},
			{Kind: ChaseKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 10},
		},
	},
	"vpr": { // place & route: graph walks plus scans
		Name: "vpr", BodyLen: 111, MemFrac: 0.35, StoreFrac: 0.3,
		BranchFrac: 0.14, FPFrac: 0.1, MultFrac: 0.03, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.9,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 37, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 1, Footprint: 512 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 512 * KB, Block: 32},
			{Kind: RandomKind, Weight: 1, Footprint: 2 * MB, Block: 32, Every: 12},
		},
	},
	"twolf": { // place & route: near-random sequences over > L2 footprint
		Name: "twolf", BodyLen: 225, MemFrac: 0.36, StoreFrac: 0.3,
		BranchFrac: 0.15, FPFrac: 0, MultFrac: 0.03, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.89,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 80, Footprint: 16 * KB},
			{Kind: RandomKind, Weight: 1, Footprint: 1280 * KB, Block: 32},
		},
	},
	"lucas": { // FP primality: FFT-style strided sweeps + column walks
		Name: "lucas", BodyLen: 90, MemFrac: 0.30, StoreFrac: 0.35,
		BranchFrac: 0.03, FPFrac: 0.6, MultFrac: 0.2, DepProb: 0.4,
		LoadUseProb: 0.25, BranchPredictability: 0.99,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 23, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 256 * KB, Stride: 32},
			{Kind: ColumnKind, Weight: 1, Footprint: 4 * MB, RowStride: 32 * KB, Rows: 64, Block: 32, Every: 4},
			{Kind: SweepKind, Weight: 1, Footprint: 2 * MB, Stride: 32, Every: 10},
		},
	},
	"gcc": { // compiler: many distinct per-set patterns (TCP-8M better)
		Name: "gcc", BodyLen: 109, MemFrac: 0.34, StoreFrac: 0.4,
		BranchFrac: 0.16, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.45, BranchPredictability: 0.92,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 34, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 2, Footprint: 768 * KB, Block: 32},
			{Kind: SweepKind, Weight: 1, Footprint: 512 * KB, Stride: 8},
			{Kind: ChaseKind, Weight: 1, Footprint: 2560 * KB, Block: 32, Every: 5},
		},
	},
	"applu": { // FP PDE solver: large shared sweeps (TCP-8K favoured)
		Name: "applu", BodyLen: 56, MemFrac: 0.32, StoreFrac: 0.35,
		BranchFrac: 0.03, FPFrac: 0.6, MultFrac: 0.2, DepProb: 0.4,
		LoadUseProb: 0.3, BranchPredictability: 0.99,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 12, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 3, Footprint: 512 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 3, Footprint: 1280 * KB, Stride: 8},
		},
	},
	"art": { // neural net: ~96 unique tags scanned over and over
		Name: "art", BodyLen: 55, MemFrac: 0.38, StoreFrac: 0.2,
		BranchFrac: 0.08, FPFrac: 0.45, MultFrac: 0.15, DepProb: 0.45,
		LoadUseProb: 0.35, BranchPredictability: 0.97,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 9, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 6, Footprint: 1536 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 6, Footprint: 1536 * KB, Stride: 8},
		},
	},
	"mgrid": { // FP multigrid: huge dense sweeps
		Name: "mgrid", BodyLen: 44, MemFrac: 0.36, StoreFrac: 0.3,
		BranchFrac: 0.02, FPFrac: 0.6, MultFrac: 0.2, DepProb: 0.4,
		LoadUseProb: 0.3, BranchPredictability: 0.99,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 10, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 4, Footprint: 2 * MB, Stride: 8},
			{Kind: SweepKind, Weight: 2, Footprint: 1536 * KB, Stride: 8},
		},
	},
	"swim": { // FP shallow water: sweeps + column walks (most strided)
		Name: "swim", BodyLen: 132, MemFrac: 0.38, StoreFrac: 0.35,
		BranchFrac: 0.02, FPFrac: 0.6, MultFrac: 0.18, DepProb: 0.4,
		LoadUseProb: 0.3, BranchPredictability: 0.99,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 29, Footprint: 16 * KB},
			{Kind: SweepKind, Weight: 10, Footprint: 2560 * KB, Stride: 8},
			{Kind: SweepKind, Weight: 10, Footprint: 2 * MB, Stride: 8},
			{Kind: ColumnKind, Weight: 1, Footprint: 4 * MB, RowStride: 32 * KB, Rows: 64, Block: 32},
		},
	},
	"ammp": { // FP molecular dynamics: neighbour-list chases, memory-bound
		Name: "ammp", BodyLen: 53, MemFrac: 0.38, StoreFrac: 0.25,
		BranchFrac: 0.06, FPFrac: 0.45, MultFrac: 0.15, DepProb: 0.45,
		LoadUseProb: 0.4, BranchPredictability: 0.96,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 16, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 2, Footprint: 1792 * KB, Block: 32},
			{Kind: SweepKind, Weight: 2, Footprint: 1 * MB, Stride: 8},
		},
	},
	"mcf": { // network simplex: giant pointer chase, the most memory-bound
		Name: "mcf", BodyLen: 65, MemFrac: 0.40, StoreFrac: 0.25,
		BranchFrac: 0.12, FPFrac: 0, MultFrac: 0.02, DepProb: 0.5,
		LoadUseProb: 0.5, BranchPredictability: 0.9,
		Streams: []StreamSpec{
			{Kind: HotKind, Weight: 18, Footprint: 16 * KB},
			{Kind: ChaseKind, Weight: 6, Footprint: 2 * MB, Block: 32},
			{Kind: RandomKind, Weight: 2, Footprint: 1 * MB, Block: 32},
		},
	},
}

// Spec2000 returns the model for the named benchmark.
func Spec2000(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown SPEC2000 benchmark %q", name)
	}
	return s, nil
}

// MustSpec2000 is Spec2000 but panics on unknown names.
func MustSpec2000(name string) Spec {
	s, err := Spec2000(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all benchmark names in the paper's figure order.
func Names() []string {
	return append([]string(nil), IdealOrder...)
}

// AllSpecs returns every benchmark model in the paper's figure order.
func AllSpecs() []Spec {
	out := make([]Spec, 0, len(IdealOrder))
	for _, n := range IdealOrder {
		out = append(out, specs[n])
	}
	return out
}

// SortedNames returns all names alphabetically (for stable CLI listings).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
