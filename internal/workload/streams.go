package workload

import (
	"tagprefetch/internal/checkpoint"
	"tagprefetch/internal/xrand"
)

// stream produces a deterministic address sequence. next returns the byte
// address and whether the access is address-dependent on the stream's
// previous access (true only for pointer chases). save/restore checkpoint
// the stream's dynamic cursor only — structure (footprints, permutations)
// is rebuilt by Reset; see snapshot.go.
type stream interface {
	next() (addr uint64, chained bool)
	save(w *checkpoint.Writer)
	restore(r *checkpoint.Reader) error
}

func newStream(ss StreamSpec, base uint64, r *xrand.Rand) stream {
	inner := newRawStream(ss, base, r)
	if ss.Every > 1 {
		return &throttled{inner: inner, every: ss.Every}
	}
	return inner
}

// throttled advances its inner stream on every Nth activation only,
// re-touching the previous address in between (mostly L1 hits), so a
// weight-1 stream can contribute an arbitrarily small miss rate.
type throttled struct {
	inner stream
	every int
	count int
	last  uint64
	has   bool
}

func (t *throttled) next() (uint64, bool) {
	t.count++
	if !t.has || t.count >= t.every {
		t.count = 0
		a, ch := t.inner.next()
		t.last = a
		t.has = true
		return a, ch
	}
	return t.last, false
}

func newRawStream(ss StreamSpec, base uint64, r *xrand.Rand) stream {
	switch ss.Kind {
	case SweepKind:
		return &sweepStream{base: base, footprint: ss.Footprint, stride: ss.Stride}
	case ChaseKind:
		return newChaseStream(ss, base, r)
	case RandomKind:
		return &randomStream{base: base, blocks: maxU64(ss.Footprint/ss.Block, 1), block: ss.Block, r: r}
	case ColumnKind:
		return &columnStream{
			base:      base,
			rowStride: ss.RowStride,
			rows:      ss.Rows,
			colBytes:  ss.Block,
			cols:      maxU64(ss.Footprint/(ss.RowStride*ss.Rows), 1),
		}
	case HotKind:
		fp := ss.Footprint
		if fp > 24*1024 { // keep hot loops inside the 32 KB L1
			fp = 24 * 1024
		}
		return &sweepStream{base: base, footprint: fp, stride: ss.Stride}
	default:
		panic("workload: unknown stream kind")
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// sweepStream walks [base, base+footprint) with a fixed stride, wrapping —
// the access pattern of dense array kernels (swim, mgrid, applu...). Every
// pass emits the same tag sequence into every cache set it crosses, which
// is the across-set sharing TCP-8K exploits.
type sweepStream struct {
	base      uint64
	footprint uint64
	stride    uint64
	pos       uint64
}

func (s *sweepStream) next() (uint64, bool) {
	a := s.base + s.pos
	s.pos += s.stride
	if s.pos >= s.footprint {
		s.pos = 0
	}
	return a, false
}

// chaseStream follows a fixed pseudo-random cyclic permutation of blocks —
// the linked-data access pattern of mcf/ammp. The cycle repeats, so per-set
// miss-tag sequences are repetitive, but each set sees its own private
// sequence: sharing a PHT across sets causes contention (the regime in
// which the paper finds TCP-8M beats TCP-8K).
type chaseStream struct {
	base  uint64
	block uint64
	succ  []uint32
	cur   uint32
}

func newChaseStream(ss StreamSpec, base uint64, r *xrand.Rand) *chaseStream {
	n := int(maxU64(ss.Footprint/ss.Block, 2))
	if n > 1<<22 {
		n = 1 << 22 // cap the permutation at 4M blocks
	}
	perm := r.Perm(n)
	succ := make([]uint32, n)
	for i := 0; i < n; i++ {
		succ[perm[i]] = uint32(perm[(i+1)%n])
	}
	return &chaseStream{base: base, block: ss.Block, succ: succ, cur: uint32(perm[0])}
}

func (c *chaseStream) next() (uint64, bool) {
	a := c.base + uint64(c.cur)*c.block
	c.cur = c.succ[c.cur]
	return a, true
}

// randomStream picks a uniformly random block each access — crafty/twolf's
// hash-table behaviour. Tags recur (the footprint is finite) but per-set
// sequences are unpredictable, defeating correlation prefetchers.
type randomStream struct {
	base   uint64
	blocks uint64
	block  uint64
	r      *xrand.Rand
}

func (s *randomStream) next() (uint64, bool) {
	return s.base + s.r.Uint64n(s.blocks)*s.block, false
}

// columnStream walks down a matrix column: consecutive accesses are
// RowStride bytes apart. With RowStride equal to the L1 way size (32 KiB),
// consecutive misses fall in the same cache set with tags differing by a
// constant — the per-set strided tag sequences of Figure 15.
type columnStream struct {
	base      uint64
	rowStride uint64
	rows      uint64
	colBytes  uint64
	cols      uint64
	row, col  uint64
}

func (s *columnStream) next() (uint64, bool) {
	a := s.base + s.row*s.rowStride + s.col*s.colBytes
	s.row++
	if s.row == s.rows {
		s.row = 0
		s.col++
		if s.col == s.cols {
			s.col = 0
		}
	}
	return a, false
}
