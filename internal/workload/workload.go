// Package workload synthesizes deterministic instruction streams that stand
// in for the SPEC CPU2000 binaries the paper simulates.
//
// Each benchmark model is a Spec: a loop body of BodyLen instruction slots
// whose class mix (loads/stores/branches/int/fp) matches the benchmark's
// character, where every memory slot is bound to one address Stream (an
// array sweep, a tiled kernel, a pointer chase over a fixed permutation, a
// uniform random scatter, a same-set column walk, or an L1-resident hot
// loop). The body repeats forever, like the loop nests that dominate
// SPEC2000 execution. Because the body and the slot-to-stream binding are
// fixed at Reset, each load PC sees a regular address pattern (what stride
// prefetchers and DBCP key on) and each L1 set sees repetitive per-set tag
// sequences (what TCP keys on) — exactly the structure Section 3 of the
// paper measures in real miss traces.
//
// The models are calibrated against the paper's own characterisation data
// (Figures 1-7 and 15); see spec2000.go and DESIGN.md §6.
package workload

import (
	"fmt"

	"tagprefetch/internal/xrand"
)

// OpClass is the functional-unit class of an instruction.
type OpClass uint8

// Instruction classes, mirroring the FU mix of Table 1.
const (
	IntALU OpClass = iota
	IntMult
	FPALU
	FPMult
	Load
	Store
	Branch
	numClasses
)

// String returns the class mnemonic.
func (c OpClass) String() string {
	switch c {
	case IntALU:
		return "intalu"
	case IntMult:
		return "intmult"
	case FPALU:
		return "fpalu"
	case FPMult:
		return "fpmult"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// Inst is one dynamic instruction handed to the core.
type Inst struct {
	Class OpClass
	PC    uint64
	Addr  uint64 // byte address for Load/Store
	Taken bool   // resolved direction for Branch
	Dep1  int32  // backward distance (in dynamic instructions) to a producer; 0 = none
	Dep2  int32
}

// Generator produces an endless dynamic instruction stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next fills in the next dynamic instruction.
	Next(*Inst)
	// Reset rewinds the stream and reseeds all pseudo-random choices.
	Reset(seed uint64)
}

// StreamKind selects an address-pattern component.
type StreamKind uint8

// Stream kinds; see streams.go for semantics.
const (
	SweepKind  StreamKind = iota // sequential walk over a footprint
	ChaseKind                    // pointer chase over a fixed permutation
	RandomKind                   // uniform random blocks within a footprint
	ColumnKind                   // same-set column walk (strided tag sequences)
	HotKind                      // small L1-resident loop
)

// StreamSpec configures one address stream of a benchmark model.
type StreamSpec struct {
	Kind      StreamKind
	Weight    int    // relative share of the body's memory slots (>=1)
	Footprint uint64 // bytes touched by the stream
	Stride    uint64 // sweep stride in bytes (default 8)
	Block     uint64 // chase/random granularity in bytes (default 64)
	RowStride uint64 // column walk: distance between consecutive accesses (default 32 KiB)
	Rows      uint64 // column walk: accesses per column (default 64)
	// Every throttles the stream: it advances only on every Every-th
	// activation and re-touches its previous address otherwise (an L1 hit
	// in steady state). Weight-1 streams with Every > 1 model the small,
	// sustained far-memory "leak" that gives mid-tier benchmarks their
	// modest ideal-L2 potential in Figure 1. Default 1 (no throttling).
	Every int
}

// Spec is a complete benchmark model.
type Spec struct {
	Name string

	BodyLen    int     // instruction slots per loop body (default 48)
	MemFrac    float64 // fraction of slots that are loads+stores
	StoreFrac  float64 // fraction of memory slots that are stores
	BranchFrac float64 // fraction of slots that are branches (>=1 slot)
	FPFrac     float64 // fraction of compute slots that are floating point
	MultFrac   float64 // fraction of compute slots that are multiplies

	DepProb     float64 // probability a compute slot depends on a nearby earlier slot
	LoadUseProb float64 // probability a compute slot consumes the most recent load

	BranchPredictability float64 // fraction of branch outcomes following a learnable pattern

	Streams []StreamSpec
}

// New builds a Generator from the spec, seeded deterministically.
// It panics if the spec has no streams or a non-positive memory fraction,
// since such a model exercises nothing the simulator measures.
func New(spec Spec, seed uint64) Generator {
	if len(spec.Streams) == 0 {
		panic("workload: spec needs at least one stream")
	}
	if spec.MemFrac <= 0 {
		panic("workload: spec needs MemFrac > 0")
	}
	s := &synth{spec: withDefaults(spec)}
	s.Reset(seed)
	return s
}

func withDefaults(spec Spec) Spec {
	if spec.BodyLen <= 0 {
		spec.BodyLen = 48
	}
	if spec.BodyLen < 8 {
		spec.BodyLen = 8
	}
	for i := range spec.Streams {
		st := &spec.Streams[i]
		if st.Weight <= 0 {
			st.Weight = 1
		}
		if st.Stride == 0 {
			st.Stride = 8
		}
		if st.Block == 0 {
			st.Block = 64
		}
		if st.RowStride == 0 {
			st.RowStride = 32 * 1024
		}
		if st.Rows == 0 {
			st.Rows = 64
		}
		if st.Footprint == 0 {
			st.Footprint = 1 << 20
		}
		if st.Every <= 0 {
			st.Every = 1
		}
	}
	return spec
}

// slot is one position in the synthesized loop body.
type slot struct {
	class     OpClass
	pc        uint64
	streamIdx int // memory slots: which stream feeds this slot
	branchIdx int // branch slots: which branch-pattern state drives it
}

type branchPattern struct {
	period int  // taken except every period-th iteration
	count  int  // iterations so far
	loop   bool // the body-closing loop branch: always taken
}

type synth struct {
	spec    Spec
	rng     *xrand.Rand
	body    []slot //tcp:nosnap static structure rebuilt deterministically by Reset(seed); Restore only validates the decoded cursor against its length
	streams []stream
	branch  []branchPattern

	slotIdx  int
	icount   uint64 // dynamic instructions emitted
	lastLoad uint64 // icount of the most recent load (0 = none yet)
	lastOf   []uint64
}

// Name implements Generator.
func (s *synth) Name() string { return s.spec.Name }

// Reset implements Generator.
func (s *synth) Reset(seed uint64) {
	s.rng = xrand.New(seed ^ hashName(s.spec.Name))
	s.buildStreams()
	s.buildBody()
	s.slotIdx = 0
	s.icount = 0
	s.lastLoad = 0
	s.lastOf = make([]uint64, len(s.streams))
}

func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func (s *synth) buildStreams() {
	s.streams = make([]stream, len(s.spec.Streams))
	for i, ss := range s.spec.Streams {
		base := uint64(1)<<33 + uint64(i)<<28 // disjoint address regions per stream
		s.streams[i] = newStream(ss, base, xrand.New(s.rng.Uint64()))
	}
}

// buildBody lays out a deterministic loop body honouring the class mix.
func (s *synth) buildBody() {
	n := s.spec.BodyLen
	nMem := clampInt(int(float64(n)*s.spec.MemFrac+0.5), 1, n-2)
	nBr := clampInt(int(float64(n)*s.spec.BranchFrac+0.5), 1, n-nMem-1)
	nStore := clampInt(int(float64(nMem)*s.spec.StoreFrac+0.5), 0, nMem)
	nCompute := n - nMem - nBr
	nFP := clampInt(int(float64(nCompute)*s.spec.FPFrac+0.5), 0, nCompute)
	nMult := clampInt(int(float64(nCompute)*s.spec.MultFrac+0.5), 0, nCompute)

	classes := make([]OpClass, 0, n)
	for i := 0; i < nMem-nStore; i++ {
		classes = append(classes, Load)
	}
	for i := 0; i < nStore; i++ {
		classes = append(classes, Store)
	}
	for i := 0; i < nBr-1; i++ {
		classes = append(classes, Branch)
	}
	for i := 0; i < nCompute; i++ {
		switch {
		case i < nMult && i%2 == 0 && nFP > 0:
			classes = append(classes, FPMult)
		case i < nMult:
			classes = append(classes, IntMult)
		case i < nMult+nFP:
			classes = append(classes, FPALU)
		default:
			classes = append(classes, IntALU)
		}
	}
	// Deterministic shuffle so loads and compute interleave like a real
	// loop body rather than clustering.
	perm := s.rng.Perm(len(classes))
	shuffled := make([]OpClass, len(classes))
	for i, p := range perm {
		shuffled[i] = classes[p]
	}
	shuffled = append(shuffled, Branch) // the loop-closing branch

	// Bind memory slots to streams proportional to weight using largest-
	// remainder apportionment: every stream keeps at least one slot when
	// there is room, and the slots of different streams interleave within
	// one iteration (a[i], b[i], c[i]...), like a real loop body.
	memAssign := apportion(nMem, s.spec.Streams)

	s.body = make([]slot, len(shuffled))
	s.branch = s.branch[:0]
	pcBase := uint64(0x400000) + (hashName(s.spec.Name) & 0xFFFF << 8)
	mi := 0
	for i, c := range shuffled {
		sl := slot{class: c, pc: pcBase + uint64(i)*4, streamIdx: -1, branchIdx: -1}
		switch {
		case c.IsMem():
			sl.streamIdx = memAssign[mi]
			mi++
		case c == Branch:
			bp := branchPattern{period: 4 + s.rng.Intn(29)}
			if i == len(shuffled)-1 {
				bp.loop = true
			}
			sl.branchIdx = len(s.branch)
			s.branch = append(s.branch, bp)
		}
		s.body[i] = sl
	}
}

// apportion distributes n memory slots over the streams proportionally to
// their weights (largest remainder), guaranteeing each stream at least one
// slot when n >= len(streams), then interleaves the assignment.
func apportion(n int, streams []StreamSpec) []int {
	k := len(streams)
	counts := make([]int, k)
	totalW := 0
	for _, ss := range streams {
		totalW += ss.Weight
	}
	assigned := 0
	rems := make([]float64, k)
	for i, ss := range streams {
		exact := float64(n) * float64(ss.Weight) / float64(totalW)
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < k; i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	// Guarantee representation: give zero-count streams a slot taken from
	// the largest allocation.
	if n >= k {
		for i := range counts {
			if counts[i] == 0 {
				big := 0
				for j := range counts {
					if counts[j] > counts[big] {
						big = j
					}
				}
				if counts[big] > 1 {
					counts[big]--
					counts[i]++
				}
			}
		}
	}
	// Interleave: repeatedly take one slot from each stream that still has
	// some left.
	out := make([]int, 0, n)
	remaining := append([]int(nil), counts...)
	for len(out) < n {
		for i := 0; i < k && len(out) < n; i++ {
			if remaining[i] > 0 {
				remaining[i]--
				out = append(out, i)
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Next implements Generator.
func (s *synth) Next(inst *Inst) {
	sl := &s.body[s.slotIdx]
	s.slotIdx++
	if s.slotIdx == len(s.body) {
		s.slotIdx = 0
	}
	s.icount++

	inst.Class = sl.class
	inst.PC = sl.pc
	inst.Addr = 0
	inst.Taken = false
	inst.Dep1 = 0
	inst.Dep2 = 0

	switch {
	case sl.class.IsMem():
		st := s.streams[sl.streamIdx]
		a, chained := st.next()
		inst.Addr = a
		if chained && s.lastOf[sl.streamIdx] != 0 {
			// Pointer chase: this access's address was produced by the
			// stream's previous access (serialising dependence).
			inst.Dep1 = dist(s.icount, s.lastOf[sl.streamIdx])
		}
		s.lastOf[sl.streamIdx] = s.icount
		if sl.class == Load {
			s.lastLoad = s.icount
		}
	case sl.class == Branch:
		bp := &s.branch[sl.branchIdx]
		if bp.loop {
			inst.Taken = true
		} else {
			bp.count++
			patterned := bp.count%bp.period != 0
			if s.rng.Bool(s.spec.BranchPredictability) {
				inst.Taken = patterned
			} else {
				inst.Taken = s.rng.Bool(0.5)
			}
		}
		if s.lastLoad != 0 && s.rng.Bool(s.spec.LoadUseProb) {
			inst.Dep1 = dist(s.icount, s.lastLoad)
		}
	default: // compute
		if s.rng.Bool(s.spec.DepProb) {
			back := 1 + s.rng.Intn(4)
			if uint64(back) < s.icount {
				inst.Dep1 = int32(back)
			}
		}
		if s.lastLoad != 0 && s.rng.Bool(s.spec.LoadUseProb) {
			inst.Dep2 = dist(s.icount, s.lastLoad)
		}
	}
}

func dist(now, then uint64) int32 {
	d := now - then
	if d > 1<<30 {
		return 0
	}
	return int32(d)
}
