package workload

import (
	"testing"

	"tagprefetch/internal/xrand"
)

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		IntALU: "intalu", IntMult: "intmult", FPALU: "fpalu",
		FPMult: "fpmult", Load: "load", Store: "store", Branch: "branch",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if OpClass(99).String() != "opclass(99)" {
		t.Errorf("unknown class string = %q", OpClass(99).String())
	}
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestNewPanicsOnBadSpec(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		New(s, 1)
	}
	mustPanic("no streams", Spec{Name: "x", MemFrac: 0.3})
	mustPanic("no mem", Spec{Name: "x", Streams: []StreamSpec{{Kind: SweepKind}}})
}

func TestDeterminism(t *testing.T) {
	spec := MustSpec2000("swim")
	a, b := New(spec, 7), New(spec, 7)
	var ia, ib Inst
	for i := 0; i < 5000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestResetRewinds(t *testing.T) {
	g := New(MustSpec2000("mcf"), 3)
	var first []Inst
	var in Inst
	for i := 0; i < 200; i++ {
		g.Next(&in)
		first = append(first, in)
	}
	g.Reset(3)
	for i := 0; i < 200; i++ {
		g.Next(&in)
		if in != first[i] {
			t.Fatalf("reset did not rewind at %d", i)
		}
	}
}

func TestClassMixApproximatesSpec(t *testing.T) {
	spec := MustSpec2000("gcc")
	g := New(spec, 1)
	counts := map[OpClass]int{}
	var in Inst
	const n = 100000
	for i := 0; i < n; i++ {
		g.Next(&in)
		counts[in.Class]++
	}
	memFrac := float64(counts[Load]+counts[Store]) / n
	if memFrac < spec.MemFrac-0.08 || memFrac > spec.MemFrac+0.08 {
		t.Errorf("mem fraction = %v, spec %v", memFrac, spec.MemFrac)
	}
	brFrac := float64(counts[Branch]) / n
	if brFrac < spec.BranchFrac-0.08 || brFrac > spec.BranchFrac+0.08 {
		t.Errorf("branch fraction = %v, spec %v", brFrac, spec.BranchFrac)
	}
	if counts[FPALU]+counts[FPMult] != 0 {
		t.Errorf("gcc (integer code) generated FP ops")
	}
}

func TestFPWorkloadHasFPOps(t *testing.T) {
	g := New(MustSpec2000("swim"), 1)
	var in Inst
	fp := 0
	for i := 0; i < 10000; i++ {
		g.Next(&in)
		if in.Class == FPALU || in.Class == FPMult {
			fp++
		}
	}
	if fp == 0 {
		t.Error("swim generated no FP ops")
	}
}

func TestMemOpsHaveAddresses(t *testing.T) {
	g := New(MustSpec2000("art"), 1)
	var in Inst
	for i := 0; i < 10000; i++ {
		g.Next(&in)
		if in.Class.IsMem() && in.Addr == 0 {
			t.Fatalf("memory op with zero address at %d", i)
		}
		if !in.Class.IsMem() && in.Addr != 0 {
			t.Fatalf("non-memory op with address at %d", i)
		}
	}
}

func TestPCsRecur(t *testing.T) {
	// Loop bodies must reuse the same PCs every iteration (what DBCP and
	// stride prefetchers key on).
	g := New(MustSpec2000("gzip"), 1)
	var in Inst
	pcs := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.Class == Load {
			pcs[in.PC]++
		}
	}
	if len(pcs) == 0 || len(pcs) > 64 {
		t.Fatalf("unique load PCs = %d, want a small static set", len(pcs))
	}
	for pc, n := range pcs {
		if n < 100 {
			t.Errorf("load PC %#x appeared only %d times", pc, n)
		}
	}
}

func TestChaseLoadsAreChained(t *testing.T) {
	spec := Spec{
		Name: "chasetest", MemFrac: 0.5, BranchFrac: 0.05,
		Streams: []StreamSpec{{Kind: ChaseKind, Footprint: 1 * MB, Block: 32}},
	}
	g := New(spec, 1)
	var in Inst
	chained := 0
	memOps := 0
	for i := 0; i < 10000; i++ {
		g.Next(&in)
		if in.Class.IsMem() {
			memOps++
			if in.Dep1 > 0 {
				chained++
			}
		}
	}
	// All but the first accesses must carry the chain dependence.
	if chained < memOps-1 || memOps == 0 {
		t.Errorf("chained = %d of %d mem ops", chained, memOps)
	}
}

func TestSweepLoadsAreNotChained(t *testing.T) {
	spec := Spec{
		Name: "sweeptest", MemFrac: 0.5, BranchFrac: 0.05,
		Streams: []StreamSpec{{Kind: SweepKind, Footprint: 1 * MB, Stride: 8}},
	}
	g := New(spec, 1)
	var in Inst
	for i := 0; i < 10000; i++ {
		g.Next(&in)
		if in.Class.IsMem() && in.Dep1 != 0 {
			t.Fatalf("sweep access carries chain dependence at %d", i)
		}
	}
}

func TestBranchOutcomesPredictable(t *testing.T) {
	// A high-predictability workload's branch stream must be learnable:
	// the same (pc, history position) yields the same outcome across body
	// iterations except for the noise fraction.
	spec := MustSpec2000("swim") // predictability 0.99
	g := New(spec, 1)
	var in Inst
	type key struct {
		pc   uint64
		iter int
	}
	taken := map[uint64][]bool{}
	for i := 0; i < 200000; i++ {
		g.Next(&in)
		if in.Class == Branch {
			taken[in.PC] = append(taken[in.PC], in.Taken)
		}
	}
	_ = key{}
	// The loop-closing branch (at least one PC) must be always taken.
	foundLoop := false
	for _, seq := range taken {
		all := true
		for _, tk := range seq {
			if !tk {
				all = false
				break
			}
		}
		if all && len(seq) > 100 {
			foundLoop = true
		}
	}
	if !foundLoop {
		t.Error("no always-taken loop branch found")
	}
}

func TestCatalogComplete(t *testing.T) {
	if len(IdealOrder) != 26 {
		t.Fatalf("IdealOrder has %d entries, want 26", len(IdealOrder))
	}
	seen := map[string]bool{}
	for _, n := range IdealOrder {
		if seen[n] {
			t.Errorf("duplicate benchmark %q", n)
		}
		seen[n] = true
		s, err := Spec2000(n)
		if err != nil {
			t.Errorf("missing spec %q: %v", n, err)
			continue
		}
		if s.Name != n {
			t.Errorf("spec %q has Name %q", n, s.Name)
		}
		if len(s.Streams) == 0 || s.MemFrac <= 0 {
			t.Errorf("spec %q incomplete", n)
		}
		// Every model must construct and generate without panicking.
		g := New(s, 42)
		var in Inst
		for i := 0; i < 1000; i++ {
			g.Next(&in)
		}
	}
	if len(specs) != 26 {
		t.Errorf("catalog has %d specs, want 26", len(specs))
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Spec2000("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSpec2000 should panic")
		}
	}()
	MustSpec2000("nope")
}

func TestNamesAndSortedNames(t *testing.T) {
	n := Names()
	if len(n) != 26 || n[0] != "fma3d" || n[25] != "mcf" {
		t.Errorf("Names() = %v", n)
	}
	sn := SortedNames()
	for i := 1; i < len(sn); i++ {
		if sn[i-1] >= sn[i] {
			t.Errorf("SortedNames not sorted at %d", i)
		}
	}
	if len(AllSpecs()) != 26 {
		t.Error("AllSpecs length")
	}
}

func TestStreamFootprints(t *testing.T) {
	// Each stream must stay within its own base region (1<<28 apart).
	for _, name := range []string{"mcf", "swim", "art", "twolf"} {
		spec := MustSpec2000(name)
		g := New(spec, 9)
		var in Inst
		for i := 0; i < 50000; i++ {
			g.Next(&in)
			if !in.Class.IsMem() {
				continue
			}
			if in.Addr < 1<<33 {
				t.Fatalf("%s: address %#x below stream base region", name, in.Addr)
			}
		}
	}
}

func TestColumnStreamStridedTags(t *testing.T) {
	// Consecutive column-walk accesses must land in the same L1 set with
	// constant tag stride (the Figure 15 pattern).
	ss := StreamSpec{Kind: ColumnKind, Footprint: 2 * MB, RowStride: 32 * KB, Rows: 16, Block: 32}
	st := newStream(withDefaults(Spec{
		Name: "c", MemFrac: 0.5, Streams: []StreamSpec{ss},
	}).Streams[0], 1<<33, xrand.New(1))
	var prev uint64
	for i := 0; i < 16; i++ {
		a, chained := st.next()
		if chained {
			t.Fatal("column stream must not chain")
		}
		if i > 0 && a-prev != 32*KB {
			t.Fatalf("stride = %d, want 32KB", a-prev)
		}
		prev = a
	}
}

func TestChasePermutationCyclesAllBlocks(t *testing.T) {
	ss := StreamSpec{Kind: ChaseKind, Footprint: 64 * KB, Block: 32}
	st := newStream(withDefaults(Spec{
		Name: "c", MemFrac: 0.5, Streams: []StreamSpec{ss},
	}).Streams[0], 0, xrand.New(5))
	n := 64 * KB / 32
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		a, _ := st.next()
		if seen[a] {
			t.Fatalf("block %#x revisited before cycle completed (i=%d)", a, i)
		}
		seen[a] = true
	}
	if len(seen) != n {
		t.Fatalf("visited %d blocks, want %d", len(seen), n)
	}
	// Second cycle revisits in the same order.
	a0, _ := st.next()
	if !seen[a0] {
		t.Error("second cycle left the footprint")
	}
}

func TestHotStreamStaysInL1(t *testing.T) {
	ss := StreamSpec{Kind: HotKind, Footprint: 64 * KB, Stride: 8} // clamped to 24KB
	st := newStream(withDefaults(Spec{
		Name: "h", MemFrac: 0.5, Streams: []StreamSpec{ss},
	}).Streams[0], 1<<33, xrand.New(1))
	lo, hi := uint64(1)<<34, uint64(0)
	for i := 0; i < 10000; i++ {
		a, _ := st.next()
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo > 24*KB {
		t.Errorf("hot stream spans %d bytes, want <= 24KB", hi-lo)
	}
}

func TestApportionProportions(t *testing.T) {
	streams := []StreamSpec{{Weight: 30}, {Weight: 1}, {Weight: 1}}
	got := apportion(16, streams)
	counts := map[int]int{}
	for _, s := range got {
		counts[s]++
	}
	if counts[1] != 1 || counts[2] != 1 {
		t.Errorf("minor streams lost representation: %v", counts)
	}
	if counts[0] != 14 {
		t.Errorf("major stream slots = %d, want 14", counts[0])
	}
	if len(got) != 16 {
		t.Errorf("total = %d", len(got))
	}
}

func TestApportionExactSplit(t *testing.T) {
	streams := []StreamSpec{{Weight: 2}, {Weight: 1}}
	got := apportion(9, streams)
	counts := map[int]int{}
	for _, s := range got {
		counts[s]++
	}
	if counts[0] != 6 || counts[1] != 3 {
		t.Errorf("counts = %v, want 6/3", counts)
	}
	// Interleaved: the first two slots must not both be stream 1.
	if got[0] == 1 && got[1] == 1 {
		t.Errorf("not interleaved: %v", got)
	}
}

func TestThrottledStreamRate(t *testing.T) {
	inner := &sweepStream{base: 0, footprint: 1 << 20, stride: 32}
	th := &throttled{inner: inner, every: 4}
	advances := 0
	var prev uint64
	for i := 0; i < 100; i++ {
		a, _ := th.next()
		if i > 0 && a != prev {
			advances++
		}
		prev = a
	}
	// 100 activations at every=4: ~25 advances.
	if advances < 20 || advances > 30 {
		t.Errorf("advances = %d, want ~25", advances)
	}
}

func TestThrottledChaseKeepsChainOnlyOnAdvance(t *testing.T) {
	spec := withDefaults(Spec{Name: "t", MemFrac: 0.5, Streams: []StreamSpec{
		{Kind: ChaseKind, Footprint: 64 * KB, Block: 32, Every: 3},
	}})
	st := newStream(spec.Streams[0], 0, xrand.New(1))
	chainedCount, total := 0, 300
	for i := 0; i < total; i++ {
		_, chained := st.next()
		if chained {
			chainedCount++
		}
	}
	// Advances happen once per `every`: only those carry the dependence.
	if chainedCount < total/4 || chainedCount > total/2 {
		t.Errorf("chained = %d of %d", chainedCount, total)
	}
}

func TestLeakStreamsKeepMissRatesLow(t *testing.T) {
	// Benchmarks with Every-throttled leak streams must still have sane
	// class mixes and addresses (regression for the throttle wrapper).
	for _, name := range []string{"equake", "bzip2", "lucas", "vpr"} {
		g := New(MustSpec2000(name), 11)
		var in Inst
		mem := 0
		for i := 0; i < 20000; i++ {
			g.Next(&in)
			if in.Class.IsMem() {
				mem++
				if in.Addr == 0 {
					t.Fatalf("%s: zero address", name)
				}
			}
		}
		if mem == 0 {
			t.Fatalf("%s: no memory ops", name)
		}
	}
}
