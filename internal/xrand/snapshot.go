package xrand

import "tagprefetch/internal/checkpoint"

// State returns the raw generator state for checkpointing.
func (r *Rand) State() uint64 { return r.s }

// SetState restores raw generator state captured by State. Unlike Seed it
// performs no remapping or scrambling: the next Uint64 continues the exact
// stream the captured generator would have produced.
func (r *Rand) SetState(s uint64) { r.s = s }

// Save writes the generator state into the current checkpoint section.
// Rand is embedded state — owners (workload streams, generators) hold it
// inside their own sections, so no section is opened here.
func (r *Rand) Save(w *checkpoint.Writer) error {
	w.U64(r.s)
	return nil
}

// Restore loads generator state written by Save.
func (r *Rand) Restore(rd *checkpoint.Reader) error {
	r.s = rd.U64()
	return rd.Err()
}
