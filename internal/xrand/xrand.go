// Package xrand provides a small, fast, deterministic PRNG (xorshift64*)
// used by the synthetic workload models. Determinism matters: every
// experiment in the harness must be exactly reproducible from a seed, so we
// do not use math/rand's global state anywhere in the simulator.
package xrand

// Rand is a xorshift64* generator. The zero value is valid (it is reseeded
// to a fixed non-zero constant).
type Rand struct {
	s uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. A zero seed is remapped to a fixed
// constant because xorshift has an all-zero fixed point.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.s = seed
	// Scramble a few rounds so nearby seeds diverge immediately.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	if r.s == 0 {
		r.Seed(0)
	}
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
