package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedSafe(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
	var z Rand // zero value
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero value produced zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(3)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / 10000
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Cheap chi-square-ish sanity check over 16 buckets.
	r := New(123)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	for i, c := range buckets {
		if c < n/16-n/64 || c > n/16+n/64 {
			t.Errorf("bucket %d count %d far from expected %d", i, c, n/16)
		}
	}
}
