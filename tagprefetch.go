// Package tagprefetch is the public API of a from-scratch reproduction of
// "TCP: Tag Correlating Prefetchers" (Hu, Kaxiras, Martonosi — HPCA 2003).
//
// The package wraps a complete evaluation stack: a cycle-level out-of-order
// core (Table 1's machine), a contention-aware L1/L2/memory hierarchy, the
// TCP prefetcher itself (a two-level THT/PHT structure indexed by truncated
// tag addition), the DBCP, stride, stream-buffer and Markov baselines, the
// timekeeping dead-block predictor used by the hybrid L1 scheme, synthetic
// SPEC CPU2000 workload models, a Section 3 locality profiler, and one
// experiment per paper figure.
//
// Quick start:
//
//	r, err := tagprefetch.Run("mcf", tagprefetch.TCP8M, tagprefetch.RunConfig{})
//	base, _ := tagprefetch.Run("mcf", tagprefetch.None, tagprefetch.RunConfig{})
//	fmt.Printf("TCP-8M speeds up mcf by %.1f%%\n", (r.IPC()/base.IPC()-1)*100)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package tagprefetch

import (
	"fmt"

	"tagprefetch/internal/core"
	"tagprefetch/internal/experiment"
	"tagprefetch/internal/memsys"
	"tagprefetch/internal/profiler"
	"tagprefetch/internal/sim"
	"tagprefetch/internal/stats"
	"tagprefetch/internal/workload"
)

// Prefetcher names a prefetcher configuration evaluated in the paper.
type Prefetcher string

// The prefetcher configurations of the paper plus classic baselines.
const (
	None     Prefetcher = "none"     // no prefetching (baseline)
	TCP8K    Prefetcher = "tcp8k"    // TCP, 8 KB shared PHT (the paper's design point)
	TCP8M    Prefetcher = "tcp8m"    // TCP, 8 MB private-per-set PHT (idealised)
	Hybrid8K Prefetcher = "hybrid8k" // TCP-8K + dead-block-gated L1 promotion
	DBCP2M   Prefetcher = "dbcp2m"   // dead-block correlating prefetcher, 2 MB table
	Stride   Prefetcher = "stride"   // Baer-Chen reference prediction table
	Stream   Prefetcher = "stream"   // Jouppi stream buffers
	Markov   Prefetcher = "markov"   // Joseph-Grunwald Markov prefetcher
	NextLine Prefetcher = "nextline" // degree-1 next-line
	GHB      Prefetcher = "ghb"      // Nesbit-Smith global history buffer (PC/DC)
)

// Factory resolves a Prefetcher name to its simulator factory.
// Unknown names return an error.
func (p Prefetcher) Factory() (sim.Factory, error) {
	switch p {
	case None, "":
		return sim.NoPrefetch(), nil
	case TCP8K:
		return sim.TCP8K(), nil
	case TCP8M:
		return sim.TCP8M(), nil
	case Hybrid8K:
		return sim.Hybrid8K(), nil
	case DBCP2M:
		return sim.DBCP2M(), nil
	case Stride:
		return sim.Stride(), nil
	case Stream:
		return sim.StreamBuffers(), nil
	case Markov:
		return sim.Markov(), nil
	case NextLine:
		return sim.NextLine(), nil
	case GHB:
		return sim.GHB(), nil
	}
	return sim.Factory{}, fmt.Errorf("tagprefetch: unknown prefetcher %q", string(p))
}

// RunConfig controls one simulation. The zero value uses the paper's
// Table 1 machine, 1M measured instructions after 500K warmup.
type RunConfig struct {
	// Instructions measured (default 1e6).
	Instructions uint64
	// Warmup instructions before measurement (default Instructions/2).
	Warmup uint64
	// Seed for the deterministic workload models (default 1).
	Seed uint64
	// IdealL2 makes every L2 access hit (the Figure 1 study).
	IdealL2 bool
	// PHTBytes and IndexBits build a custom TCP instead of a named
	// Prefetcher when CustomTCP is true.
	CustomTCP bool
	PHTBytes  int
	IndexBits int
}

// Result is the outcome of one simulation run; see sim.Result for fields.
type Result = sim.Result

// Summary is the Section 3 locality characterisation of a miss stream.
type Summary = profiler.Summary

// TCPConfig exposes the full TCP parameter space (internal/core.Config)
// for research use beyond the named configurations.
type TCPConfig = core.Config

// Options scales the experiment harness; see internal/experiment.
type Options = experiment.Options

// Table and Series are the printable experiment outputs.
type (
	Table  = stats.Table
	Series = stats.Series
)

// Benchmarks returns the 26 SPEC CPU2000 workload models in the paper's
// figure order (ascending ideal-L2 potential).
func Benchmarks() []string { return workload.Names() }

// Run simulates one benchmark with the named prefetcher.
func Run(bench string, p Prefetcher, cfg RunConfig) (Result, error) {
	var f sim.Factory
	var err error
	if cfg.CustomTCP {
		f = sim.TCPWithPHT(cfg.PHTBytes, cfg.IndexBits, false)
	} else if f, err = p.Factory(); err != nil {
		return Result{}, err
	}
	sc := sim.Config{
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		Mem:          memsys.Config{IdealL2: cfg.IdealL2},
	}
	return sim.Run(bench, f, sc)
}

// RunTCP simulates one benchmark with a fully custom TCP configuration.
func RunTCP(bench string, tcp TCPConfig, cfg RunConfig) (Result, error) {
	f := sim.Custom("tcp-custom", tcp)
	sc := sim.Config{
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		Mem:          memsys.Config{IdealL2: cfg.IdealL2},
	}
	return sim.Run(bench, f, sc)
}

// Improvement returns r's relative IPC improvement over base (0.14 = 14%).
func Improvement(r, base Result) float64 { return sim.Improvement(r, base) }

// Profile runs one benchmark without prefetching and returns the Section 3
// locality summary of its L1 data-cache miss stream.
func Profile(bench string, cfg RunConfig) (Summary, error) {
	return experiment.ProfileBench(bench, experiment.Options{
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
	})
}

// Experiments re-exported from the harness; each regenerates one paper
// table or figure (see DESIGN.md §4 for the index).
var (
	Table1         = experiment.Table1
	Fig01IdealL2   = experiment.Fig01IdealL2
	Fig11IPC       = experiment.Fig11IPC
	Fig12Traffic   = experiment.Fig12Traffic
	Fig13PHTSize   = experiment.Fig13PHTSize
	Fig13IndexBits = experiment.Fig13IndexBits
	Fig14Hybrid    = experiment.Fig14Hybrid
	ProfileAll     = experiment.ProfileAll
	Fig02TagStats  = experiment.Fig02TagStats
	Fig03AddrStats = experiment.Fig03AddrStats
	Fig04TagSpread = experiment.Fig04TagSpread
	Fig05SeqRatio  = experiment.Fig05SeqRatio
	Fig06SeqStats  = experiment.Fig06SeqStats
	Fig07SeqSpread = experiment.Fig07SeqSpread
	Fig15Strided   = experiment.Fig15Strided
)
