package tagprefetch

import (
	"strings"
	"testing"
)

func quick() RunConfig { return RunConfig{Instructions: 100_000, Warmup: 200_000} }

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 26 {
		t.Fatalf("benchmarks = %d, want 26", len(b))
	}
	if b[0] != "fma3d" || b[25] != "mcf" {
		t.Errorf("order = %v", b)
	}
}

func TestRunNamedPrefetchers(t *testing.T) {
	for _, p := range []Prefetcher{None, TCP8K, DBCP2M, Stride, NextLine} {
		r, err := Run("art", p, quick())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if r.IPC() <= 0 {
			t.Errorf("%s: IPC = %v", p, r.IPC())
		}
	}
}

func TestRunUnknownPrefetcher(t *testing.T) {
	if _, err := Run("art", Prefetcher("bogus"), quick()); err == nil {
		t.Error("expected error")
	}
	if _, err := Run("bogus", TCP8K, quick()); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestEmptyPrefetcherMeansNone(t *testing.T) {
	f, err := Prefetcher("").Factory()
	if err != nil || f.Name != "none" {
		t.Errorf("empty prefetcher = %q, %v", f.Name, err)
	}
}

func TestCustomTCPViaRunConfig(t *testing.T) {
	cfg := quick()
	cfg.CustomTCP = true
	cfg.PHTBytes = 32 * 1024
	cfg.IndexBits = 1
	r, err := Run("swim", TCP8K /* ignored */, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Prefetcher, "32K") {
		t.Errorf("prefetcher = %q", r.Prefetcher)
	}
}

func TestRunTCP(t *testing.T) {
	r, err := RunTCP("swim", TCPConfig{HistoryDepth: 3, PHTSets: 512, PHTWays: 4}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
}

func TestImprovementAndIdealL2(t *testing.T) {
	base, err := Run("ammp", None, quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quick()
	cfg.IdealL2 = true
	ideal, err := Run("ammp", None, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Improvement(ideal, base) <= 0 {
		t.Errorf("ideal L2 did not help ammp: %v", Improvement(ideal, base))
	}
}

func TestProfileFacade(t *testing.T) {
	s, err := Profile("swim", quick())
	if err != nil {
		t.Fatal(err)
	}
	if s.Misses == 0 || s.UniqueTags == 0 {
		t.Errorf("summary = %+v", s)
	}
	if _, err := Profile("bogus", quick()); err == nil {
		t.Error("expected error")
	}
}

func TestHeadlineResult(t *testing.T) {
	// The paper's headline: on memory-bound, pattern-rich workloads a tiny
	// 8 KB TCP outperforms no prefetching, and the geomean across a
	// contrasting trio stays positive.
	cfg := RunConfig{Instructions: 300_000, Warmup: 600_000}
	gain := 1.0
	for _, bench := range []string{"swim", "art", "applu"} {
		base, err := Run(bench, None, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tcp, err := Run(bench, TCP8K, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gain *= tcp.IPC() / base.IPC()
	}
	if gain <= 1.1 {
		t.Errorf("TCP-8K cumulative gain on sweep trio = %v, want > 1.1", gain)
	}
}
