// Module tools pins the versions of external analysis tooling that CI
// installs with `go install <pkg>@<version>`. It is a separate module so
// the main build stays dependency-free and fully offline: nothing here is
// compiled into the simulator, and the root `go build ./...` never sees
// it. CI extracts the pinned versions from this file (see the lint job in
// .github/workflows/ci.yml); bump them here, nowhere else.
module tagprefetch/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
