//go:build tools

// Package tools records the external analysis binaries CI installs, in the
// conventional blank-import form, so `go mod tidy` (run online) keeps
// go.mod's require list in sync with what CI actually uses. The build tag
// keeps the imports out of every real build; offline environments never
// compile or resolve this file.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
